#include "compress/codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <new>
#include <stdexcept>

#include "common/status.hpp"

namespace dedicore::compress {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) {
  if (at + 4 > in.size()) throw ConfigError("codec: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(std::span<const std::byte> in, std::size_t& at) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (at >= in.size()) throw ConfigError("codec: truncated varint");
    const auto b = std::to_integer<std::uint8_t>(in[at++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw ConfigError("codec: varint overflow");
  }
}

/// Reserve for a decompress output without trusting `raw_size` with a
/// giant up-front allocation: a corrupt header must cost at most this much
/// before the per-token bounds checks reject it.  Legitimate outputs
/// larger than the clamp simply grow geometrically past it.
constexpr std::size_t kReserveClamp = std::size_t{1} << 20;

void bounded_reserve(std::vector<std::byte>& out, std::size_t raw_size) {
  out.reserve(std::min(raw_size, kReserveClamp));
}

/// Bounds check shared by the token decoders: every literal/run/match must
/// fit in the declared raw size *before* any byte is materialized, so a
/// hostile token length can never trigger a huge allocation (the pre-PR
/// code inserted first and compared after).
void check_output_fits(const std::vector<std::byte>& out, std::uint64_t n,
                       std::size_t raw_size, const char* what) {
  if (n > raw_size - out.size())  // out.size() <= raw_size is invariant
    throw ConfigError(std::string(what) + ": output exceeds raw size");
}

// ---------------------------------------------------------------------------
// RLE: [count varint][byte] pairs for runs >= 4 or literal runs
// Format: sequence of tokens. Token = control varint C.
//   C even  -> literal run of C/2 bytes follows.
//   C odd   -> run of (C-1)/2 copies of the next single byte.
// ---------------------------------------------------------------------------

class RleCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rle"; }

  [[nodiscard]] std::vector<std::byte> compress(
      std::span<const std::byte> in) const override {
    std::vector<std::byte> out;
    out.reserve(in.size() / 2 + 16);
    std::size_t i = 0;
    std::size_t literal_start = 0;
    auto flush_literals = [&](std::size_t end) {
      while (literal_start < end) {
        const std::size_t n = end - literal_start;
        put_varint(out, static_cast<std::uint64_t>(n) * 2);
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(literal_start),
                   in.begin() + static_cast<std::ptrdiff_t>(literal_start + n));
        literal_start += n;
      }
    };
    while (i < in.size()) {
      std::size_t run = 1;
      while (i + run < in.size() && in[i + run] == in[i]) ++run;
      if (run >= 4) {
        flush_literals(i);
        put_varint(out, static_cast<std::uint64_t>(run) * 2 + 1);
        out.push_back(in[i]);
        i += run;
        literal_start = i;
      } else {
        i += run;
      }
    }
    flush_literals(in.size());
    return out;
  }

  [[nodiscard]] std::vector<std::byte> decompress(
      std::span<const std::byte> in, std::size_t raw_size) const override {
    std::vector<std::byte> out;
    bounded_reserve(out, raw_size);
    std::size_t at = 0;
    while (at < in.size()) {
      const std::uint64_t control = get_varint(in, at);
      if (control % 2 == 0) {
        const std::uint64_t n = control / 2;
        check_output_fits(out, n, raw_size, "rle");
        if (n > in.size() - at) throw ConfigError("rle: truncated literal run");
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(at + n));
        at += static_cast<std::size_t>(n);
      } else {
        const std::uint64_t n = (control - 1) / 2;
        check_output_fits(out, n, raw_size, "rle");
        if (at >= in.size()) throw ConfigError("rle: truncated run byte");
        out.insert(out.end(), static_cast<std::size_t>(n), in[at]);
        ++at;
      }
    }
    if (out.size() != raw_size) throw ConfigError("rle: output size mismatch");
    return out;
  }
};

// ---------------------------------------------------------------------------
// XOR-delta: XOR each 8-byte word with its predecessor, then RLE the result
// (smooth float fields produce long zero runs in the XORed stream).
// ---------------------------------------------------------------------------

class XorDeltaCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "xor"; }

  static std::vector<std::byte> transform(std::span<const std::byte> in) {
    std::vector<std::byte> out(in.size());
    std::uint64_t prev = 0;
    std::size_t i = 0;
    for (; i + 8 <= in.size(); i += 8) {
      std::uint64_t word = 0;
      std::memcpy(&word, in.data() + i, 8);
      const std::uint64_t x = word ^ prev;
      std::memcpy(out.data() + i, &x, 8);
      prev = word;
    }
    for (; i < in.size(); ++i) out[i] = in[i];  // trailing bytes unchanged
    return out;
  }

  static std::vector<std::byte> untransform(std::span<const std::byte> in) {
    std::vector<std::byte> out(in.size());
    std::uint64_t prev = 0;
    std::size_t i = 0;
    for (; i + 8 <= in.size(); i += 8) {
      std::uint64_t x = 0;
      std::memcpy(&x, in.data() + i, 8);
      const std::uint64_t word = x ^ prev;
      std::memcpy(out.data() + i, &word, 8);
      prev = word;
    }
    for (; i < in.size(); ++i) out[i] = in[i];
    return out;
  }

  [[nodiscard]] std::vector<std::byte> compress(
      std::span<const std::byte> in) const override {
    return rle_.compress(transform(in));
  }

  [[nodiscard]] std::vector<std::byte> decompress(
      std::span<const std::byte> payload, std::size_t raw_size) const override {
    return untransform(rle_.decompress(payload, raw_size));
  }

 private:
  RleCodec rle_;
};

// ---------------------------------------------------------------------------
// LZS: greedy LZ77 with a hash table of 3-byte prefixes, 64 KiB window.
// Token stream: control varint C.
//   C even -> literal run of C/2 bytes.
//   C odd  -> match: length = (C-1)/2 (>= 4), followed by varint distance.
// ---------------------------------------------------------------------------

class LzsCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "lzs"; }

  static constexpr std::size_t kWindow = 64 * 1024;
  static constexpr std::size_t kMinMatch = 4;
  static constexpr std::size_t kMaxMatch = 1 << 16;
  static constexpr std::size_t kHashBits = 15;

  [[nodiscard]] std::vector<std::byte> compress(
      std::span<const std::byte> in) const override {
    std::vector<std::byte> out;
    out.reserve(in.size() / 2 + 16);
    std::vector<std::uint32_t> head(1u << kHashBits, 0xFFFFFFFFu);

    auto hash3 = [&](std::size_t pos) -> std::uint32_t {
      std::uint32_t h = std::to_integer<std::uint8_t>(in[pos]);
      h = h * 131 + std::to_integer<std::uint8_t>(in[pos + 1]);
      h = h * 131 + std::to_integer<std::uint8_t>(in[pos + 2]);
      return (h * 2654435761u) >> (32 - kHashBits);
    };

    std::size_t i = 0;
    std::size_t literal_start = 0;
    auto flush_literals = [&](std::size_t end) {
      if (literal_start >= end) return;
      const std::size_t n = end - literal_start;
      put_varint(out, static_cast<std::uint64_t>(n) * 2);
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(literal_start),
                 in.begin() + static_cast<std::ptrdiff_t>(end));
      literal_start = end;
    };

    while (i + kMinMatch <= in.size()) {
      const std::uint32_t h = hash3(i);
      const std::uint32_t candidate = head[h];
      head[h] = static_cast<std::uint32_t>(i);

      std::size_t match_len = 0;
      if (candidate != 0xFFFFFFFFu && i - candidate <= kWindow) {
        const std::size_t limit = std::min(in.size() - i, kMaxMatch);
        while (match_len < limit && in[candidate + match_len] == in[i + match_len])
          ++match_len;
      }
      if (match_len >= kMinMatch) {
        flush_literals(i);
        put_varint(out, static_cast<std::uint64_t>(match_len) * 2 + 1);
        put_varint(out, static_cast<std::uint64_t>(i - candidate));
        // Insert hashes inside the match so later data can reference it.
        const std::size_t insert_end = std::min(i + match_len, in.size() - kMinMatch);
        for (std::size_t j = i + 1; j < insert_end; ++j)
          head[hash3(j)] = static_cast<std::uint32_t>(j);
        i += match_len;
        literal_start = i;
      } else {
        ++i;
      }
    }
    flush_literals(in.size());
    return out;
  }

  [[nodiscard]] std::vector<std::byte> decompress(
      std::span<const std::byte> in, std::size_t raw_size) const override {
    std::vector<std::byte> out;
    bounded_reserve(out, raw_size);
    std::size_t at = 0;
    while (at < in.size()) {
      const std::uint64_t control = get_varint(in, at);
      if (control % 2 == 0) {
        const std::uint64_t n = control / 2;
        check_output_fits(out, n, raw_size, "lzs");
        if (n > in.size() - at) throw ConfigError("lzs: truncated literals");
        out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(at + n));
        at += static_cast<std::size_t>(n);
      } else {
        const auto len = static_cast<std::size_t>((control - 1) / 2);
        check_output_fits(out, len, raw_size, "lzs");
        const auto dist = static_cast<std::size_t>(get_varint(in, at));
        if (dist == 0 || dist > out.size()) throw ConfigError("lzs: bad distance");
        const std::size_t start = out.size() - dist;
        for (std::size_t j = 0; j < len; ++j) out.push_back(out[start + j]);
      }
    }
    if (out.size() != raw_size) throw ConfigError("lzs: output size mismatch");
    return out;
  }
};

/// XOR-delta transform followed by LZ — the Damaris plugin default.
class XorLzsCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "xor+lzs"; }

  [[nodiscard]] std::vector<std::byte> compress(
      std::span<const std::byte> in) const override {
    return lzs_.compress(XorDeltaCodec::transform(in));
  }

  [[nodiscard]] std::vector<std::byte> decompress(
      std::span<const std::byte> payload, std::size_t raw_size) const override {
    return XorDeltaCodec::untransform(lzs_.decompress(payload, raw_size));
  }

 private:
  LzsCodec lzs_;
};

const RleCodec g_rle;
const XorDeltaCodec g_xor;
const LzsCodec g_lzs;
const XorLzsCodec g_xor_lzs;

}  // namespace

const Codec* find_codec(CodecId id) noexcept {
  switch (id) {
    case CodecId::kNone: return nullptr;
    case CodecId::kRle: return &g_rle;
    case CodecId::kXorDelta: return &g_xor;
    case CodecId::kLzs: return &g_lzs;
    case CodecId::kXorLzs: return &g_xor_lzs;
  }
  return nullptr;
}

const Codec* find_codec(std::string_view name) noexcept {
  if (name == "rle") return &g_rle;
  if (name == "xor") return &g_xor;
  if (name == "lzs") return &g_lzs;
  if (name == "xor+lzs") return &g_xor_lzs;
  return nullptr;
}

CodecId codec_id(std::string_view name) {
  if (name.empty() || name == "none") return CodecId::kNone;
  if (name == "rle") return CodecId::kRle;
  if (name == "xor") return CodecId::kXorDelta;
  if (name == "lzs") return CodecId::kLzs;
  if (name == "xor+lzs") return CodecId::kXorLzs;
  throw ConfigError("unknown codec '" + std::string(name) + "'");
}

std::string_view codec_name(CodecId id) noexcept {
  const Codec* c = find_codec(id);
  return c ? c->name() : "none";
}

std::vector<std::byte> compress_frame(CodecId id, std::span<const std::byte> input) {
  std::vector<std::byte> frame;
  frame.push_back(static_cast<std::byte>(id));
  put_u32(frame, static_cast<std::uint32_t>(input.size()));
  if (const Codec* codec = find_codec(id)) {
    std::vector<std::byte> body = codec->compress(input);
    // Fall back to stored when compression does not pay (incompressible
    // data must never grow more than the 5-byte header).
    if (body.size() < input.size()) {
      frame.insert(frame.end(), body.begin(), body.end());
      return frame;
    }
  }
  frame[0] = static_cast<std::byte>(CodecId::kNone);
  frame.insert(frame.end(), input.begin(), input.end());
  return frame;
}

std::vector<std::byte> decompress_frame(std::span<const std::byte> frame) {
  if (frame.size() < 5) throw ConfigError("decompress_frame: truncated header");
  const auto id = static_cast<CodecId>(std::to_integer<std::uint8_t>(frame[0]));
  const std::size_t raw_size = get_u32(frame, 1);
  const auto body = frame.subspan(5);
  if (id == CodecId::kNone) {
    if (body.size() != raw_size) throw ConfigError("decompress_frame: stored size mismatch");
    return {body.begin(), body.end()};
  }
  const Codec* codec = find_codec(id);
  if (codec == nullptr) throw ConfigError("decompress_frame: unknown codec id");
  if (body.empty() && raw_size > 0)
    throw ConfigError("decompress_frame: empty payload with nonzero raw size");
  // Plausibility guard against decode bombs (same shape as h5lite's
  // chunk parser): no exact bound on a valid payload's expansion exists,
  // but a header claiming more than ~1000x the payload — never less than
  // 64 MiB — is corruption, not data.  The header is untrusted input; it
  // must not size an allocation by itself.
  const std::uint64_t cap = std::max<std::uint64_t>(
      64ull << 20, static_cast<std::uint64_t>(body.size()) << 10);
  if (raw_size > cap)
    throw ConfigError("decompress_frame: raw size implausible for payload");
  try {
    return codec->decompress(body, raw_size);
  } catch (const std::bad_alloc&) {
    throw ConfigError("decompress_frame: implausible allocation rejected");
  } catch (const std::length_error&) {
    throw ConfigError("decompress_frame: implausible allocation rejected");
  }
}

double compression_ratio(std::size_t raw, std::size_t compressed) noexcept {
  // Degenerate cases, defined rather than divided: an empty input stored
  // in zero bytes is the identity (1.0); a nonzero input claimed to fit
  // in zero bytes has no meaningful ratio — 0.0 is the "no ratio"
  // sentinel (it can never be mistaken for a real ratio, which is > 0).
  if (compressed == 0) return raw == 0 ? 1.0 : 0.0;
  return static_cast<double>(raw) / static_cast<double>(compressed);
}

}  // namespace dedicore::compress
