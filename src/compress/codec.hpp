// Compression codecs for the spare-time experiment (§IV.D).
//
// The paper reports that the idle time of dedicated cores was used to add
// data compression "achieving a 600% compression ratio without any
// overhead on the simulation".  CM1's 3-D fields are smooth floating-point
// grids, which compress extremely well under a delta-style transform: the
// codecs here implement that pipeline from scratch.
//
//  * "rle"    — byte-level run-length encoding (baseline);
//  * "xor"    — word-wise XOR-delta transform + zero-run encoding, the
//               right shape for smooth f32/f64 fields;
//  * "lzs"    — greedy hash-chain LZ with a 64 KiB window (general data);
//  * "xor+lzs"— the transform followed by LZ, the default pipeline of the
//               Damaris compression plugin.
//
// All codecs are self-contained: decompress(compress(x)) == x for any x
// (property-tested), with no dependency on external libraries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dedicore::compress {

/// Abstract codec.  Implementations are stateless and thread-safe.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Compresses `input`; the result is a self-contained payload (its raw
  /// size travels in the frame header added by `compress_frame`, not here).
  [[nodiscard]] virtual std::vector<std::byte> compress(
      std::span<const std::byte> input) const = 0;

  /// Inverse of compress(); `raw_size` is the exact expected output size.
  /// Throws ConfigError on corrupt payloads.
  [[nodiscard]] virtual std::vector<std::byte> decompress(
      std::span<const std::byte> payload, std::size_t raw_size) const = 0;
};

/// Numeric codec ids as stored in h5lite chunk headers.
enum class CodecId : std::uint8_t {
  kNone = 0,
  kRle = 1,
  kXorDelta = 2,
  kLzs = 3,
  kXorLzs = 4,
};

/// Codec lookup by id / name ("rle", "xor", "lzs", "xor+lzs").
/// Returns nullptr for kNone / unknown names.
const Codec* find_codec(CodecId id) noexcept;
const Codec* find_codec(std::string_view name) noexcept;
CodecId codec_id(std::string_view name);
std::string_view codec_name(CodecId id) noexcept;

/// Framed helpers: prepend a tiny header (id + raw size) so a buffer can be
/// decompressed without out-of-band metadata.  The header is untrusted:
/// decompress_frame rejects truncated/short frames, unknown codec ids, and
/// raw sizes implausible for the payload (decode bombs) with ConfigError —
/// a corrupt frame can never crash or size a huge allocation.
std::vector<std::byte> compress_frame(CodecId id, std::span<const std::byte> input);
std::vector<std::byte> decompress_frame(std::span<const std::byte> frame);

/// compression ratio as the paper quotes it: raw/compressed (600% == 6.0).
/// Degenerate cases are defined, not divided: (0, 0) is the identity
/// (1.0); (raw > 0, 0) returns the 0.0 "no ratio" sentinel.
double compression_ratio(std::size_t raw, std::size_t compressed) noexcept;

}  // namespace dedicore::compress
