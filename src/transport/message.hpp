// The event vocabulary of the data path — the contract every transport
// backend carries.
//
// Simulation cores talk to dedicated I/O cores (or dedicated I/O nodes)
// through two coupled channels: a *control* channel of fixed-size events
// and a *data* channel of blocks referenced from those events by BlockRef
// handles.  The shared-memory backend keeps blocks in a node-local segment
// and ships only the handles; the MPI backend ships the payload with the
// event and re-homes it in the receiving server's segment.  Either way the
// server sees the same Event stream, which is why this vocabulary lives in
// the transport layer rather than in core.
#pragma once

#include <cstdint>
#include <type_traits>

#include "shm/segment.hpp"

namespace dedicore::transport {

using VariableId = std::uint32_t;
using Iteration = std::int64_t;

/// What a delivered message means to the dedicated core.
enum class EventType : std::uint8_t {
  kBlockWritten,   ///< a data block is ready (resident or shipped)
  kEndIteration,   ///< the source rank finished iteration `iteration`
  kUserSignal,     ///< user-defined event; `signal_id` selects the action
  kIterationSkipped,  ///< source rank dropped this iteration (backpressure)
  kClientStop,     ///< the source rank is shutting down
  /// The source rank died without the stop protocol (process kill, network
  /// partition).  Injected by the transport's liveness machinery — the shm
  /// backend's liveness epoch or the MPI abort frame — never posted by a
  /// healthy client.  On delivery the server reclaims the client's
  /// resources (credits, segment blocks, partial iteration) and the demux
  /// cancels any of its still-gated control barriers.
  kClientAborted,
};

/// Fixed-size message traveling through a transport.  Trivially copyable
/// so the MPI backend can serialize it as raw bytes.
struct Event {
  EventType type = EventType::kBlockWritten;
  int source = -1;            ///< writer's client index (unique per server)
  Iteration iteration = 0;
  VariableId variable = 0;    ///< kBlockWritten only
  std::uint32_t block_id = 0; ///< distinguishes multiple blocks per (var, it, src)
  std::uint32_t signal_id = 0;  ///< kUserSignal only
  shm::BlockRef block;        ///< kBlockWritten only
  /// Global element offsets of the block within the variable's grid.
  std::uint64_t global_offset[4] = {0, 0, 0, 0};
};

static_assert(std::is_trivially_copyable_v<Event>,
              "Event is wire-serialized by the MPI transport");

/// What to do when the block store or event channel is full (§V.C.1 of the
/// paper): block the simulation until the dedicated core catches up, or
/// drop (skip) the iteration's output to preserve the simulation's pace.
///
/// kAdaptive implements the paper's stated future work — "more elaborate
/// techniques that will select portions of data carrying important
/// scientific value are now being considered": under pressure, writes of
/// variables with priority 0 are dropped individually while variables
/// with priority > 0 keep the blocking guarantee, so the important data
/// always reaches storage and the simulation never stalls on the rest.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,
  kSkipIteration,
  kAdaptive,
};

/// Where the dedicated resources live (§II discusses both placements):
/// kCores — the paper's design: the last `dedicated_cores` ranks of every
///   SMP node serve their node mates through shared memory;
/// kNodes — DataSpaces/IOFSL-style placement: the last `dedicated_nodes`
///   ranks of the *world* act as I/O nodes fed over the interconnect.
enum class DedicatedMode : std::uint8_t {
  kCores,
  kNodes,
};

/// How a pooled ServerTransport assigns clients to its next_event()
/// workers.  With `steal` off, the assignment is the static pinning rule
/// (client c → worker c mod N) — the PR 4 behavior.  With `steal` on,
/// ownership of a client is a transferable token: an idle worker whose
/// own clients are empty takes the longest-backlogged client from the
/// busiest peer, so one hot client no longer serializes the pool while
/// siblings sleep.  `steal_threshold` is the minimum backlog (events
/// queued for one client) that makes that client worth migrating —
/// below it, a steal would just ping-pong ownership for a single event.
struct WorkerPoolOptions {
  bool steal = false;
  int steal_threshold = 2;
};

}  // namespace dedicore::transport
