// The pluggable transport abstraction: block placement + event delivery
// between simulation cores (clients) and dedicated cores (servers).
//
// The contract factored out of the original hard-wired shared-memory path:
//
//  * a client *acquires* a writable block (blocking or not — the caller
//    implements the backpressure policy on top of these two primitives),
//    fills it through view(), then *publishes* a kBlockWritten event that
//    references it — after a successful publish the block belongs to the
//    receiving server;
//  * control events (end-iteration, user signals, stop) travel through
//    post() on the same ordered channel, so a server sees every block of
//    an iteration before that iteration's close;
//  * the server consumes the merged event stream with next_event(), reads
//    block payloads through its own view(), and *releases* blocks once the
//    plugin pipeline is done with them — which is also the moment
//    backpressure relaxes (segment space frees / credit returns).
//
// Guarantees every backend must provide (checked by tests/transport_test):
//  * per-client FIFO: events from one client arrive in publish/post order;
//  * no loss, no duplication of published blocks;
//  * try_acquire fails (rather than blocks) when the bounded resource is
//    exhausted, and acquire_blocking succeeds once blocks are released;
//  * payload bytes survive the trip unmodified;
//  * orderly shutdown: after every client posts kClientStop, all prior
//    events have been (or will be) delivered — nothing is dropped.  The
//    shm backend additionally supports an explicit close that drains
//    pending events and then refuses further publishes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "common/status.hpp"
#include "shm/segment.hpp"
#include "transport/message.hpp"

namespace dedicore::transport {

/// Data-path observability, uniform across backends.  "remote" counters
/// stay zero on the shared-memory backend; they are how a dedicated-nodes
/// deployment proves blocks actually traveled over MPI.
struct TransportStats {
  std::uint64_t events_sent = 0;
  std::uint64_t events_received = 0;
  std::uint64_t blocks_shipped = 0;        ///< payloads serialized to the wire
  std::uint64_t bytes_shipped = 0;
  std::uint64_t blocks_received_remote = 0;  ///< payloads re-homed on arrival
  std::uint64_t bytes_received_remote = 0;
  std::uint64_t acquire_failures = 0;      ///< try_acquire refusals
  std::uint64_t credit_waits = 0;          ///< blocking waits for flow credit
  /// Messages actually put on the wire by this endpoint (frames on the MPI
  /// backend).  With batching this is O(1) per iteration, not O(blocks) —
  /// the ratio events_sent / wire_messages is the aggregation factor.
  std::uint64_t wire_messages = 0;
  /// Pooled servers with stealing enabled: client-ownership migrations to
  /// idle workers, and units of idle-hook work (write-behind jobs drained
  /// by workers that would otherwise have parked in next_event).
  std::uint64_t steals = 0;
  std::uint64_t idle_drains = 0;
  /// Fault tolerance: dead clients observed (kClientAborted delivered),
  /// resources returned by reclaim_client() — segment blocks / bytes freed
  /// on the shm backend, flow credits swallowed instead of sent on the MPI
  /// backend — and gated control events of dead clients cancelled by the
  /// worker demux instead of being waited on forever.
  std::uint64_t clients_aborted = 0;
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t bytes_reclaimed = 0;
  std::uint64_t credits_reclaimed = 0;
  std::uint64_t controls_cancelled = 0;
};

/// Client-side endpoint toward one server.  Not thread-safe: one client
/// rank owns one instance.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Nonblocking block reservation; nullopt when the bounded resource
  /// (segment space or flow credit) cannot fit `size` right now.
  virtual std::optional<shm::BlockRef> try_acquire(std::uint64_t size) = 0;

  /// Blocking reservation: waits for space/credit.  Returns nullopt only
  /// when `size` can never fit, or — on backends with an explicit close
  /// (shm) — when the transport is closed while waiting.  The MPI backend
  /// has no close: its lifecycle ends through the kClientStop protocol,
  /// and the wait relies on the server releasing blocks (liveness holds
  /// whenever one iteration fits the credit budget, the same requirement
  /// a shared segment places on its capacity).
  virtual std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) = 0;

  /// Writable bytes of an acquired (not yet published) block.
  virtual std::span<std::byte> view(const shm::BlockRef& block) = 0;

  /// Returns an acquired block without publishing it (undo of acquire).
  virtual void abandon(const shm::BlockRef& block) = 0;

  /// Delivers a kBlockWritten event; on success ownership of event.block
  /// passes to the server.  Blocking flavor returns false when the
  /// transport is closed; the caller then abandons the block.
  virtual bool publish(const Event& event) = 0;

  /// Nonblocking flavor: WOULD_BLOCK when the event channel is full (the
  /// skip/adaptive policies key off it), CLOSED after shutdown.
  virtual Status try_publish(const Event& event) = 0;

  /// Delivers a control event (no block payload); false when closed.
  virtual bool post(const Event& event) = 0;

  /// Ships anything the backend has staged for batching (the MPI backend
  /// coalesces an iteration's publishes into one wire frame).  Called by
  /// the client at iteration close; backends also flush internally before
  /// any wait that needs the server to see staged work (liveness), so
  /// forgetting to call this can delay delivery but never deadlock.
  virtual void flush() {}

  /// Simulates the death of this client's process (fault injection and
  /// tests; also invoked internally when an armed "client.die" fault
  /// fires).  The transport emits its backend's death notification — the
  /// shm backend bumps the liveness epoch and enqueues kClientAborted on
  /// the server's intake; the MPI backend ships an abort frame — and then
  /// refuses every further operation, exactly as a SIGKILL'd process
  /// would: staged-but-unflushed batches are lost, acquired-but-unpublished
  /// blocks stay allocated until the server's reclaim path frees them.
  /// Idempotent.
  virtual void die() {}

  /// True once die() has run (or an armed fault killed the client); every
  /// subsequent acquire/publish/post fails as closed.
  [[nodiscard]] virtual bool dead() const { return false; }

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

/// Server-side endpoint: the merged intake of all clients assigned to one
/// server.  One server rank owns one instance; by default a single thread
/// consumes it, but after set_worker_count(N) the instance supports N
/// concurrent next_event() callers (a worker pool draining one intake).
///
/// Multi-worker contract (checked by tests/transport_test):
///  * every client is *owned* by exactly one worker at any instant, and
///    only the owner is handed that client's events, in publish/post
///    order — per-client FIFO delivery and exactly-once survive the
///    concurrency.  With stealing off (the WorkerPoolOptions default)
///    ownership is the static pinning rule: client c's events are
///    delivered only through next_event(c mod N).  With stealing on, an
///    idle worker may take over a backlogged client (the whole client,
///    never individual events); control events additionally act as
///    per-client barriers, so an iteration's close is never delivered
///    while an earlier event of that client is still being processed;
///  * view() and release() may be called from any worker at any time
///    (an iteration's completing worker releases other clients' blocks);
///  * end_of_stream() declares that no further client events will arrive
///    (every client posted kClientStop and those stops were consumed);
///    workers still blocked in next_event() then return nullopt.  Ordered
///    shutdown is the caller's job: call it only after the last stop, so
///    workers drain before any credit/queue teardown.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  /// Declares `workers` concurrent next_event() consumers and the
  /// client→worker assignment policy (static pinning by default;
  /// options.steal enables work stealing).  Call at most once, before
  /// the first next_event(); without it the transport serves a single
  /// consumer (worker 0).
  virtual void set_worker_count(int workers,
                                WorkerPoolOptions options = {}) {
    (void)options;
    DEDICORE_CHECK(workers == 1,
                   "ServerTransport: backend supports a single consumer");
  }

  /// Installs idle work for pooled backends: a worker about to park in
  /// next_event() with nothing to consume, steal, or lead calls `hook`
  /// (without transport locks) until it returns false ("no work").  The
  /// server wires this to the write-behind queue so disk drain overlaps
  /// event waits.  Single-consumer backends ignore it (their one worker
  /// is never parked while useful work exists — the caller drains
  /// opportunistically instead).  Install before the first next_event().
  virtual void set_idle_hook(std::function<bool()> hook) { (void)hook; }

  /// Blocking: the next event addressed to worker `worker`, with any block
  /// payload locally resident.  nullopt when the transport was closed (or
  /// end_of_stream() was called) and every pending event for this worker
  /// has been drained.
  virtual std::optional<Event> next_event(int worker) = 0;

  /// Single-consumer convenience: worker 0's intake.
  std::optional<Event> next_event() { return next_event(0); }

  /// Wakes every worker blocked in next_event() once the stream is over;
  /// they drain what is already demuxed for them, then see nullopt.
  /// No-op on single-consumer use (the caller's loop just stops calling).
  virtual void end_of_stream() {}

  /// Read-only bytes of a block delivered by next_event().  Safe to call
  /// from any worker.
  virtual std::span<const std::byte> view(const shm::BlockRef& block) = 0;

  /// Frees a delivered block; relaxes backpressure toward its producer.
  /// Safe to call from any worker.
  virtual void release(const shm::BlockRef& block) = 0;

  /// Reclaims everything a dead client still holds inside the transport.
  /// Called by the server when it consumes that client's kClientAborted —
  /// i.e. after the control barrier guarantees all of the client's earlier
  /// block events were delivered.  The shm backend deallocates the blocks
  /// the client had acquired but never published (a killed process cannot
  /// free its own shared-memory allocations); the MPI backend marks the
  /// rank dead so release() of its blocks swallows the flow credit instead
  /// of sending it to a corpse.  Blocks already *delivered* to the server
  /// are not touched — the caller releases those through release() as
  /// usual.  Safe to call from any worker; idempotent.
  virtual void reclaim_client(int source) { (void)source; }

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

}  // namespace dedicore::transport
