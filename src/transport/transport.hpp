// The pluggable transport abstraction: block placement + event delivery
// between simulation cores (clients) and dedicated cores (servers).
//
// The contract factored out of the original hard-wired shared-memory path:
//
//  * a client *acquires* a writable block (blocking or not — the caller
//    implements the backpressure policy on top of these two primitives),
//    fills it through view(), then *publishes* a kBlockWritten event that
//    references it — after a successful publish the block belongs to the
//    receiving server;
//  * control events (end-iteration, user signals, stop) travel through
//    post() on the same ordered channel, so a server sees every block of
//    an iteration before that iteration's close;
//  * the server consumes the merged event stream with next_event(), reads
//    block payloads through its own view(), and *releases* blocks once the
//    plugin pipeline is done with them — which is also the moment
//    backpressure relaxes (segment space frees / credit returns).
//
// Guarantees every backend must provide (checked by tests/transport_test):
//  * per-client FIFO: events from one client arrive in publish/post order;
//  * no loss, no duplication of published blocks;
//  * try_acquire fails (rather than blocks) when the bounded resource is
//    exhausted, and acquire_blocking succeeds once blocks are released;
//  * payload bytes survive the trip unmodified;
//  * orderly shutdown: after every client posts kClientStop, all prior
//    events have been (or will be) delivered — nothing is dropped.  The
//    shm backend additionally supports an explicit close that drains
//    pending events and then refuses further publishes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/status.hpp"
#include "shm/segment.hpp"
#include "transport/message.hpp"

namespace dedicore::transport {

/// Data-path observability, uniform across backends.  "remote" counters
/// stay zero on the shared-memory backend; they are how a dedicated-nodes
/// deployment proves blocks actually traveled over MPI.
struct TransportStats {
  std::uint64_t events_sent = 0;
  std::uint64_t events_received = 0;
  std::uint64_t blocks_shipped = 0;        ///< payloads serialized to the wire
  std::uint64_t bytes_shipped = 0;
  std::uint64_t blocks_received_remote = 0;  ///< payloads re-homed on arrival
  std::uint64_t bytes_received_remote = 0;
  std::uint64_t acquire_failures = 0;      ///< try_acquire refusals
  std::uint64_t credit_waits = 0;          ///< blocking waits for flow credit
  /// Messages actually put on the wire by this endpoint (frames on the MPI
  /// backend).  With batching this is O(1) per iteration, not O(blocks) —
  /// the ratio events_sent / wire_messages is the aggregation factor.
  std::uint64_t wire_messages = 0;
};

/// Client-side endpoint toward one server.  Not thread-safe: one client
/// rank owns one instance.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Nonblocking block reservation; nullopt when the bounded resource
  /// (segment space or flow credit) cannot fit `size` right now.
  virtual std::optional<shm::BlockRef> try_acquire(std::uint64_t size) = 0;

  /// Blocking reservation: waits for space/credit.  Returns nullopt only
  /// when `size` can never fit, or — on backends with an explicit close
  /// (shm) — when the transport is closed while waiting.  The MPI backend
  /// has no close: its lifecycle ends through the kClientStop protocol,
  /// and the wait relies on the server releasing blocks (liveness holds
  /// whenever one iteration fits the credit budget, the same requirement
  /// a shared segment places on its capacity).
  virtual std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) = 0;

  /// Writable bytes of an acquired (not yet published) block.
  virtual std::span<std::byte> view(const shm::BlockRef& block) = 0;

  /// Returns an acquired block without publishing it (undo of acquire).
  virtual void abandon(const shm::BlockRef& block) = 0;

  /// Delivers a kBlockWritten event; on success ownership of event.block
  /// passes to the server.  Blocking flavor returns false when the
  /// transport is closed; the caller then abandons the block.
  virtual bool publish(const Event& event) = 0;

  /// Nonblocking flavor: WOULD_BLOCK when the event channel is full (the
  /// skip/adaptive policies key off it), CLOSED after shutdown.
  virtual Status try_publish(const Event& event) = 0;

  /// Delivers a control event (no block payload); false when closed.
  virtual bool post(const Event& event) = 0;

  /// Ships anything the backend has staged for batching (the MPI backend
  /// coalesces an iteration's publishes into one wire frame).  Called by
  /// the client at iteration close; backends also flush internally before
  /// any wait that needs the server to see staged work (liveness), so
  /// forgetting to call this can delay delivery but never deadlock.
  virtual void flush() {}

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

/// Server-side endpoint: the merged intake of all clients assigned to one
/// server.  Not thread-safe: one server rank owns one instance.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  /// Blocking: the next event addressed to this server, with any block
  /// payload locally resident.  nullopt when the transport was closed and
  /// every pending event has been drained.
  virtual std::optional<Event> next_event() = 0;

  /// Read-only bytes of a block delivered by next_event().
  virtual std::span<const std::byte> view(const shm::BlockRef& block) = 0;

  /// Frees a delivered block; relaxes backpressure toward its producer.
  virtual void release(const shm::BlockRef& block) = 0;

  [[nodiscard]] virtual TransportStats stats() const = 0;
};

}  // namespace dedicore::transport
