// MpiTransport — dedicated-*nodes* data path over minimpi point-to-point.
//
// Instead of sharing a segment with its server, a client stages each block
// in private memory and ships event + payload over the wire; the server
// re-homes arriving payloads in its own node-local segment so the
// downstream pipeline (index, plugins, release) is identical to the
// shared-memory path.
//
// Shipping is *batched at iteration granularity* (wire.hpp): publishes
// append records to a pending frame, and the frame goes out as ONE wire
// message when a control event is posted (end_iteration is the natural
// flush point), when flush() is called, when the staged payload crosses
// kMaxFrameBytes, or before any wait that needs the server to see staged
// work.  The wire cost per (client, iteration) is therefore O(1) messages
// instead of O(blocks) — the cross-node mirror of the paper's per-node
// shared-memory aggregation.
//
// Backpressure cannot ride on a shared allocator here, so it is
// credit-based: each client starts with a byte budget (its share of the
// server's segment), debits it on acquire, and gets credit back in a
// kTagCredit message.  Credit is returned at frame granularity: the
// server accumulates the credit of a frame's blocks and sends ONE credit
// message once the plugin pipeline has released them all.
// acquire_blocking flushes the pending frame and waits on the credit
// channel — the exact analogue of blocking on a full segment — and
// try_acquire fails when the budget is spent, which is what the
// skip/adaptive policies key off.
//
// Per-pair FIFO of minimpi messages plus in-order demux of each frame
// gives the same ordering guarantee as the bounded queue: a server sees
// every block of a client's iteration before that iteration's close event.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "transport/shm_transport.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"

namespace dedicore::transport {

/// Tags used by the MPI backend (below minimpi's reserved collective
/// range, above anything the examples use on the world communicator).
inline constexpr int kTagFrame = (1 << 20) + 1;
inline constexpr int kTagCredit = (1 << 20) + 2;

/// Staged payload bound before an early flush: bounds client-side frame
/// memory while keeping typical iterations to a single wire message.
inline constexpr std::uint64_t kMaxFrameBytes = 8ull << 20;

class MpiClientTransport final : public ClientTransport {
 public:
  /// `comm` is the communicator both endpoints live in (the world in a
  /// dedicated-nodes deployment); `server_rank` the dedicated I/O rank
  /// serving this client; `credit_bytes` this client's share of the
  /// server's segment.
  MpiClientTransport(minimpi::Comm comm, int server_rank,
                     std::uint64_t credit_bytes);

  std::optional<shm::BlockRef> try_acquire(std::uint64_t size) override;
  std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) override;
  std::span<std::byte> view(const shm::BlockRef& block) override;
  void abandon(const shm::BlockRef& block) override;
  bool publish(const Event& event) override;
  Status try_publish(const Event& event) override;
  bool post(const Event& event) override;
  void flush() override;
  [[nodiscard]] TransportStats stats() const override { return stats_; }

  [[nodiscard]] std::uint64_t credits() const noexcept { return credits_; }
  /// Records staged for the pending frame (tests/diagnostics).
  [[nodiscard]] std::size_t staged_events() const noexcept {
    return frame_records_.size();
  }

 private:
  /// Consumes any credit-return messages waiting in the mailbox.
  void drain_credits();

  minimpi::Comm comm_;
  int server_rank_;
  const std::uint64_t credit_limit_;
  std::uint64_t credits_;
  std::uint64_t next_offset_ = 0;  ///< synthetic BlockRef offsets
  /// Acquired-but-unpublished blocks; each buffer reserves sizeof(Event)
  /// of header space in front of the payload so publish() serializes
  /// without copying (view() returns the subspan past the header).
  std::unordered_map<std::uint64_t, std::vector<std::byte>> staging_;
  /// Records of the pending frame, in publish/post order; shipped as one
  /// wire message by flush().
  std::vector<std::vector<std::byte>> frame_records_;
  std::uint32_t frame_event_count_ = 0;
  std::uint64_t frame_payload_bytes_ = 0;
  std::uint64_t frame_seq_ = 0;
  TransportStats stats_;
};

class MpiServerTransport final : public ServerTransport {
 public:
  /// `fabric` provides the local segment arriving payloads are re-homed
  /// in (its queues are unused; pass queue_count = 0).
  MpiServerTransport(minimpi::Comm comm, std::shared_ptr<ShmFabric> fabric);

  std::optional<Event> next_event() override;
  std::span<const std::byte> view(const shm::BlockRef& block) override;
  void release(const shm::BlockRef& block) override;
  [[nodiscard]] TransportStats stats() const override { return stats_; }

 private:
  /// Credit accounting for one received frame: the credit owed to its
  /// source accumulates as blocks are released and ships as one message
  /// when the last block of the frame is gone.
  struct FrameCredit {
    int source_rank = -1;
    std::uint64_t credit_accum = 0;
    std::uint32_t blocks_outstanding = 0;
  };

  /// A block that arrived over the wire: which frame to credit on release,
  /// and — when the segment was too fragmented to place it — its spill
  /// storage.
  struct Resident {
    std::uint64_t frame_id = 0;
    std::uint64_t credit = 0;
    std::vector<std::byte> spill;  ///< empty when segment-resident
  };

  /// Receives one frame and demuxes its records into pending_.
  void receive_frame();

  minimpi::Comm comm_;
  std::shared_ptr<ShmFabric> fabric_;
  std::deque<Event> pending_;  ///< demuxed, not yet handed to the server
  std::unordered_map<std::uint64_t, Resident> resident_;
  std::unordered_map<std::uint64_t, FrameCredit> frames_;
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t next_spill_offset_;  ///< offsets >= capacity mark spills
  TransportStats stats_;
};

}  // namespace dedicore::transport
