// MpiTransport — dedicated-*nodes* data path over minimpi point-to-point.
//
// Instead of sharing a segment with its server, a client stages each block
// in private memory and ships event + payload over the wire; the server
// re-homes arriving payloads in its own node-local segment so the
// downstream pipeline (index, plugins, release) is identical to the
// shared-memory path.
//
// Shipping is *batched at iteration granularity* (wire.hpp): publishes
// append records to a pending frame, and the frame goes out as ONE wire
// message when a control event is posted (end_iteration is the natural
// flush point), when flush() is called, when the staged payload crosses
// kMaxFrameBytes, or before any wait that needs the server to see staged
// work.  The wire cost per (client, iteration) is therefore O(1) messages
// instead of O(blocks) — the cross-node mirror of the paper's per-node
// shared-memory aggregation.
//
// Backpressure cannot ride on a shared allocator here, so it is
// credit-based: each client starts with a byte budget (its share of the
// server's segment), debits it on acquire, and gets credit back in a
// kTagCredit message.  Credit is returned at frame granularity: the
// server accumulates the credit of a frame's blocks and sends ONE credit
// message once the plugin pipeline has released them all.
// acquire_blocking flushes the pending frame and waits on the credit
// channel — the exact analogue of blocking on a full segment — and
// try_acquire fails when the budget is spent, which is what the
// skip/adaptive policies key off.
//
// Per-pair FIFO of minimpi messages plus in-order demux of each frame
// gives the same ordering guarantee as the bounded queue: a server sees
// every block of a client's iteration before that iteration's close event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "minimpi/minimpi.hpp"
#include "transport/shm_transport.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"
#include "transport/worker_demux.hpp"

namespace dedicore::transport {

/// Tags used by the MPI backend (below minimpi's reserved collective
/// range, above anything the examples use on the world communicator).
inline constexpr int kTagFrame = (1 << 20) + 1;
inline constexpr int kTagCredit = (1 << 20) + 2;

/// Staged payload bound before an early flush: bounds client-side frame
/// memory while keeping typical iterations to a single wire message.
inline constexpr std::uint64_t kMaxFrameBytes = 8ull << 20;

class MpiClientTransport final : public ClientTransport {
 public:
  /// `comm` is the communicator both endpoints live in (the world in a
  /// dedicated-nodes deployment); `server_rank` the dedicated I/O rank
  /// serving this client; `credit_bytes` this client's share of the
  /// server's segment.
  /// The optional `faults` injector arms the "client.die" point (target =
  /// this client's rank in `comm`), probed on every publish/post — the
  /// deterministic "client dies after event K" scenario.
  MpiClientTransport(minimpi::Comm comm, int server_rank,
                     std::uint64_t credit_bytes,
                     std::shared_ptr<fault::FaultInjector> faults = nullptr);

  std::optional<shm::BlockRef> try_acquire(std::uint64_t size) override;
  std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) override;
  std::span<std::byte> view(const shm::BlockRef& block) override;
  void abandon(const shm::BlockRef& block) override;
  bool publish(const Event& event) override;
  Status try_publish(const Event& event) override;
  bool post(const Event& event) override;
  void flush() override;
  /// Process death: the staged (unflushed) frame is LOST — exactly what a
  /// SIGKILL between flush points costs — and a one-event abort frame
  /// ships in its place (the stand-in for the MPI layer's peer-death
  /// notification).  Per-pair FIFO puts the abort behind every frame the
  /// client really sent, so the server's control barrier still orders all
  /// delivered work before reclamation.  Idempotent.
  void die() override;
  [[nodiscard]] bool dead() const override { return dead_; }
  [[nodiscard]] TransportStats stats() const override { return stats_; }

  [[nodiscard]] std::uint64_t credits() const noexcept { return credits_; }
  /// Records staged for the pending frame (tests/diagnostics).
  [[nodiscard]] std::size_t staged_events() const noexcept {
    return frame_records_.size();
  }

 private:
  /// Consumes any credit-return messages waiting in the mailbox.
  void drain_credits();

  /// True when an armed "client.die" fault kills this client at this call.
  bool fault_kills_now();

  /// True when `need` exceeds the whole credit budget: no wait or flush
  /// can ever satisfy it.  Logs the shared "can never fit" diagnostic and
  /// counts an acquire failure, so both acquire flavors fail fast with the
  /// same story instead of the blocking one waiting forever.
  bool can_never_fit(std::uint64_t need);

  minimpi::Comm comm_;
  int server_rank_;
  const std::uint64_t credit_limit_;
  std::uint64_t credits_;
  bool warned_never_fit_ = false;  ///< the sizing diagnostic logs once
  std::uint64_t next_offset_ = 0;  ///< synthetic BlockRef offsets
  /// Acquired-but-unpublished blocks; each buffer reserves sizeof(Event)
  /// of header space in front of the payload so publish() serializes
  /// without copying (view() returns the subspan past the header).
  std::unordered_map<std::uint64_t, std::vector<std::byte>> staging_;
  /// Records of the pending frame, in publish/post order; shipped as one
  /// wire message by flush().
  std::vector<std::vector<std::byte>> frame_records_;
  std::uint32_t frame_event_count_ = 0;
  std::uint64_t frame_payload_bytes_ = 0;
  std::uint64_t frame_seq_ = 0;
  std::shared_ptr<fault::FaultInjector> faults_;
  bool dead_ = false;
  TransportStats stats_;
};

class MpiServerTransport final : public ServerTransport {
 public:
  /// `fabric` provides the local segment arriving payloads are re-homed
  /// in (its queues are unused; pass queue_count = 0).
  MpiServerTransport(minimpi::Comm comm, std::shared_ptr<ShmFabric> fabric);

  /// Multi-worker mode: N concurrent next_event() consumers drain the one
  /// frame channel through the leader-follower demux (WorkerDemux); the
  /// leader's blocking drain is the frame recv.  A frame carries one
  /// client's events, so the per-client ownership token (pinned, or
  /// migrating under work stealing) keeps per-client FIFO across the
  /// concurrency.  Frame/credit/residency bookkeeping lives under
  /// state_mutex_ because release() and view() may be called from any
  /// worker while the leader is demuxing.
  void set_worker_count(int workers, WorkerPoolOptions options = {}) override;
  void set_idle_hook(std::function<bool()> hook) override;
  std::optional<Event> next_event(int worker) override;
  using ServerTransport::next_event;
  /// Wakes workers blocked in next_event() by sending this rank a
  /// zero-byte sentinel on the frame channel.  Per-pair FIFO means every
  /// real frame sent before the callers' stop events has already been
  /// received, so nothing can arrive behind the sentinel.
  void end_of_stream() override;
  std::span<const std::byte> view(const shm::BlockRef& block) override;
  void release(const shm::BlockRef& block) override;
  /// Marks `source` dead: credit completed for its frames from now on is
  /// *swallowed* (counted in credits_reclaimed) instead of being sent to a
  /// corpse — the flow-control analogue of freeing a dead client's
  /// segment blocks.  Idempotent; callable from any worker.
  void reclaim_client(int source) override;
  [[nodiscard]] TransportStats stats() const override;

 private:
  /// Credit accounting for one received frame: the credit owed to its
  /// source accumulates as blocks are released and ships as one message
  /// when the last block of the frame is gone.
  struct FrameCredit {
    int source_rank = -1;
    std::uint64_t credit_accum = 0;
    std::uint32_t blocks_outstanding = 0;
  };

  /// A block that arrived over the wire: which frame to credit on release,
  /// and — when the segment was too fragmented to place it — its spill
  /// storage.
  struct Resident {
    std::uint64_t frame_id = 0;
    std::uint64_t credit = 0;
    std::vector<std::byte> spill;  ///< empty when segment-resident
  };

  /// Receives one frame, re-homes its payloads, and appends its events to
  /// `out` (residency/credit bookkeeping under state_mutex_; no intake
  /// locks).  Returns false when the end-of-stream sentinel arrived.
  bool receive_frame(std::vector<Event>& out);

  minimpi::Comm comm_;
  std::shared_ptr<ShmFabric> fabric_;
  WorkerDemux demux_;
  std::atomic<std::uint64_t> events_received_{0};
  /// Guards resident_, frames_, spill offsets and the non-atomic stats —
  /// everything release()/view() share with the demux leader.  Leaf lock:
  /// taken only after demux.pool is released (the leader re-homes
  /// payloads with the pool lock dropped), and a credit send may run
  /// under it (minimpi's internal mailbox locks sit below it).
  mutable Mutex state_mutex_{"mpi.state"};
  std::unordered_map<std::uint64_t, Resident> resident_
      DEDICORE_GUARDED_BY(state_mutex_);
  std::unordered_map<std::uint64_t, FrameCredit> frames_
      DEDICORE_GUARDED_BY(state_mutex_);
  /// reclaim_client targets.
  std::unordered_set<int> dead_ranks_ DEDICORE_GUARDED_BY(state_mutex_);
  /// LEADER-ONLY state, deliberately not state_mutex_-guarded: only the
  /// demux leader runs receive_frame (one at a time), and successive
  /// leaderships are ordered by the demux's own lock handoff, so these
  /// counters are single-threaded in practice.  set_worker_count's
  /// next_frame_id_ check runs before any consumption exists.
  std::uint64_t next_frame_id_ = 0;
  /// Offsets >= capacity mark spills (leader-only, as above).
  std::uint64_t next_spill_offset_;
  TransportStats stats_ DEDICORE_GUARDED_BY(state_mutex_);
};

}  // namespace dedicore::transport
