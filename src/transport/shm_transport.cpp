#include "transport/shm_transport.hpp"

namespace dedicore::transport {

namespace {

shm::BoundedQueue<Event>& queue_of(ShmFabric& fabric, int server_index) {
  DEDICORE_CHECK(server_index >= 0 &&
                     server_index < static_cast<int>(fabric.queues.size()),
                 "ShmTransport: server_index out of range");
  return *fabric.queues[static_cast<std::size_t>(server_index)];
}

}  // namespace

ShmClientTransport::ShmClientTransport(
    std::shared_ptr<ShmFabric> fabric, int server_index, int client_index,
    std::shared_ptr<fault::FaultInjector> faults)
    : fabric_(std::move(fabric)),
      queue_(queue_of(*fabric_, server_index)),
      client_index_(client_index),
      faults_(std::move(faults)) {}

bool ShmClientTransport::fault_kills_now() {
  if (dead_) return true;
  if (!faults_ || client_index_ < 0) return false;
  if (!faults_->should_fire("client.die", client_index_)) return false;
  die();
  return true;
}

std::optional<shm::BlockRef> ShmClientTransport::try_acquire(
    std::uint64_t size) {
  if (dead_) return std::nullopt;
  auto ref = fabric_->segment.try_allocate(size);
  if (!ref) {
    ++stats_.acquire_failures;
    return ref;
  }
  fabric_->ledger_acquired(client_index_, *ref);
  return ref;
}

std::optional<shm::BlockRef> ShmClientTransport::acquire_blocking(
    std::uint64_t size) {
  if (dead_) return std::nullopt;
  auto ref = fabric_->segment.allocate_blocking(size);
  if (ref) fabric_->ledger_acquired(client_index_, *ref);
  return ref;
}

std::span<std::byte> ShmClientTransport::view(const shm::BlockRef& block) {
  return fabric_->segment.view(block);
}

void ShmClientTransport::abandon(const shm::BlockRef& block) {
  fabric_->ledger_released(client_index_, block);
  fabric_->segment.deallocate(block);
}

bool ShmClientTransport::publish(const Event& event) {
  if (fault_kills_now()) return false;
  if (!queue_.push(event)) return false;
  // Ownership of the block passed to the server; the ledger now only
  // tracks what a post-mortem reclaim must free itself.
  fabric_->ledger_released(client_index_, event.block);
  fabric_->ledger_heartbeat(client_index_);
  ++stats_.events_sent;
  return true;
}

Status ShmClientTransport::try_publish(const Event& event) {
  if (fault_kills_now()) return Status::closed("client dead");
  const Status pushed = queue_.try_push(event);
  if (pushed) {
    fabric_->ledger_released(client_index_, event.block);
    fabric_->ledger_heartbeat(client_index_);
    ++stats_.events_sent;
  }
  return pushed;
}

bool ShmClientTransport::post(const Event& event) {
  if (fault_kills_now()) return false;
  if (!queue_.push(event)) return false;
  fabric_->ledger_heartbeat(client_index_);
  ++stats_.events_sent;
  return true;
}

void ShmClientTransport::die() {
  if (dead_) return;
  dead_ = true;
  // Freeze the liveness epoch; if a previous death already did, the
  // monitor has already injected the abort — don't duplicate it.
  if (client_index_ >= 0 && !fabric_->ledger_mark_dead(client_index_))
    return;
  // The node monitor's injection on the corpse's behalf: the abort rides
  // the same ordered queue, so it lands *behind* everything the client
  // actually published — the demux's control barrier then guarantees all
  // delivered work precedes reclamation.
  Event abort;
  abort.type = EventType::kClientAborted;
  abort.source = client_index_;
  queue_.push(abort);
}

ShmServerTransport::ShmServerTransport(std::shared_ptr<ShmFabric> fabric,
                                       int server_index)
    : fabric_(std::move(fabric)), queue_(queue_of(*fabric_, server_index)) {}

void ShmServerTransport::set_worker_count(int workers,
                                          WorkerPoolOptions options) {
  DEDICORE_CHECK(batch_.empty(),
                 "ShmServerTransport: set_worker_count after consumption began");
  demux_.set_worker_count(workers, options);
}

void ShmServerTransport::set_idle_hook(std::function<bool()> hook) {
  demux_.set_idle_hook(std::move(hook));
}

std::optional<Event> ShmServerTransport::next_event(int worker) {
  if (demux_.workers() == 1) {
    DEDICORE_CHECK(worker == 0, "ShmServerTransport: worker index out of range");
    return next_event_single();
  }
  // pop_all blocks until a batch arrives; 0 means closed and drained —
  // the end-of-stream verdict the demux fans out to every worker.
  return demux_.next(
      worker, [this](std::vector<Event>& out) { return queue_.pop_all(out) > 0; },
      events_received_);
}

std::optional<Event> ShmServerTransport::next_event_single() {
  if (batch_cursor_ == batch_.size()) {
    batch_.clear();
    batch_cursor_ = 0;
    if (queue_.pop_all(batch_) == 0) return std::nullopt;  // closed + drained
  }
  events_received_.fetch_add(1, std::memory_order_relaxed);
  return batch_[batch_cursor_++];
}

std::span<const std::byte> ShmServerTransport::view(
    const shm::BlockRef& block) {
  return std::as_const(fabric_->segment).view(block);
}

void ShmServerTransport::release(const shm::BlockRef& block) {
  fabric_->segment.deallocate(block);
}

void ShmServerTransport::reclaim_client(int source) {
  const std::vector<shm::BlockRef> orphans =
      fabric_->ledger_take_outstanding(source);
  std::uint64_t bytes = 0;
  for (const shm::BlockRef& block : orphans) {
    bytes += block.size;
    fabric_->segment.deallocate(block);
  }
  clients_aborted_.fetch_add(1, std::memory_order_relaxed);
  blocks_reclaimed_.fetch_add(orphans.size(), std::memory_order_relaxed);
  bytes_reclaimed_.fetch_add(bytes, std::memory_order_relaxed);
}

TransportStats ShmServerTransport::stats() const {
  TransportStats out = stats_;
  out.events_received = events_received_.load(std::memory_order_relaxed);
  out.steals = demux_.steals();
  out.idle_drains = demux_.idle_drains();
  out.clients_aborted = clients_aborted_.load(std::memory_order_relaxed);
  out.blocks_reclaimed = blocks_reclaimed_.load(std::memory_order_relaxed);
  out.bytes_reclaimed = bytes_reclaimed_.load(std::memory_order_relaxed);
  out.controls_cancelled = demux_.controls_cancelled();
  return out;
}

void ShmServerTransport::close_intake() { queue_.close(); }

}  // namespace dedicore::transport
