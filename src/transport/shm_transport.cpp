#include "transport/shm_transport.hpp"

namespace dedicore::transport {

namespace {

shm::BoundedQueue<Event>& queue_of(ShmFabric& fabric, int server_index) {
  DEDICORE_CHECK(server_index >= 0 &&
                     server_index < static_cast<int>(fabric.queues.size()),
                 "ShmTransport: server_index out of range");
  return *fabric.queues[static_cast<std::size_t>(server_index)];
}

}  // namespace

ShmClientTransport::ShmClientTransport(std::shared_ptr<ShmFabric> fabric,
                                       int server_index)
    : fabric_(std::move(fabric)), queue_(queue_of(*fabric_, server_index)) {}

std::optional<shm::BlockRef> ShmClientTransport::try_acquire(
    std::uint64_t size) {
  auto ref = fabric_->segment.try_allocate(size);
  if (!ref) ++stats_.acquire_failures;
  return ref;
}

std::optional<shm::BlockRef> ShmClientTransport::acquire_blocking(
    std::uint64_t size) {
  return fabric_->segment.allocate_blocking(size);
}

std::span<std::byte> ShmClientTransport::view(const shm::BlockRef& block) {
  return fabric_->segment.view(block);
}

void ShmClientTransport::abandon(const shm::BlockRef& block) {
  fabric_->segment.deallocate(block);
}

bool ShmClientTransport::publish(const Event& event) {
  if (!queue_.push(event)) return false;
  ++stats_.events_sent;
  return true;
}

Status ShmClientTransport::try_publish(const Event& event) {
  const Status pushed = queue_.try_push(event);
  if (pushed) ++stats_.events_sent;
  return pushed;
}

bool ShmClientTransport::post(const Event& event) {
  if (!queue_.push(event)) return false;
  ++stats_.events_sent;
  return true;
}

ShmServerTransport::ShmServerTransport(std::shared_ptr<ShmFabric> fabric,
                                       int server_index)
    : fabric_(std::move(fabric)), queue_(queue_of(*fabric_, server_index)) {}

void ShmServerTransport::set_worker_count(int workers,
                                          WorkerPoolOptions options) {
  DEDICORE_CHECK(batch_.empty(),
                 "ShmServerTransport: set_worker_count after consumption began");
  demux_.set_worker_count(workers, options);
}

void ShmServerTransport::set_idle_hook(std::function<bool()> hook) {
  demux_.set_idle_hook(std::move(hook));
}

std::optional<Event> ShmServerTransport::next_event(int worker) {
  if (demux_.workers() == 1) {
    DEDICORE_CHECK(worker == 0, "ShmServerTransport: worker index out of range");
    return next_event_single();
  }
  // pop_all blocks until a batch arrives; 0 means closed and drained —
  // the end-of-stream verdict the demux fans out to every worker.
  return demux_.next(
      worker, [this](std::vector<Event>& out) { return queue_.pop_all(out) > 0; },
      events_received_);
}

std::optional<Event> ShmServerTransport::next_event_single() {
  if (batch_cursor_ == batch_.size()) {
    batch_.clear();
    batch_cursor_ = 0;
    if (queue_.pop_all(batch_) == 0) return std::nullopt;  // closed + drained
  }
  events_received_.fetch_add(1, std::memory_order_relaxed);
  return batch_[batch_cursor_++];
}

std::span<const std::byte> ShmServerTransport::view(
    const shm::BlockRef& block) {
  return std::as_const(fabric_->segment).view(block);
}

void ShmServerTransport::release(const shm::BlockRef& block) {
  fabric_->segment.deallocate(block);
}

TransportStats ShmServerTransport::stats() const {
  TransportStats out = stats_;
  out.events_received = events_received_.load(std::memory_order_relaxed);
  out.steals = demux_.steals();
  out.idle_drains = demux_.idle_drains();
  return out;
}

void ShmServerTransport::close_intake() { queue_.close(); }

}  // namespace dedicore::transport
