#include "transport/mpi_transport.hpp"

#include <cstring>

namespace dedicore::transport {

namespace {

/// Credits are debited/returned in aligned units so both sides agree even
/// though the server's allocator rounds internally.
std::uint64_t aligned(std::uint64_t size) { return (size + 7) & ~std::uint64_t{7}; }

/// Staged blocks reserve wire-header space in front of the payload so
/// publish() can serialize without copying the payload.
constexpr std::uint64_t kHeaderBytes = sizeof(Event);

std::uint64_t credit_from(const minimpi::Message& message) {
  std::uint64_t returned = 0;
  DEDICORE_CHECK(message.payload.size() == sizeof(returned),
                 "MpiClientTransport: malformed credit message");
  std::memcpy(&returned, message.payload.data(), sizeof(returned));
  return returned;
}

}  // namespace

// ---------------------------------------------------------------------------
// MpiClientTransport
// ---------------------------------------------------------------------------

MpiClientTransport::MpiClientTransport(minimpi::Comm comm, int server_rank,
                                       std::uint64_t credit_bytes)
    : comm_(std::move(comm)),
      server_rank_(server_rank),
      credit_limit_(credit_bytes),
      credits_(credit_bytes) {
  DEDICORE_CHECK(comm_.valid(), "MpiClientTransport: invalid communicator");
  DEDICORE_CHECK(server_rank >= 0 && server_rank < comm_.size(),
                 "MpiClientTransport: server rank out of range");
  DEDICORE_CHECK(credit_bytes > 0, "MpiClientTransport: zero credit budget");
}

void MpiClientTransport::drain_credits() {
  while (auto m = comm_.try_recv(server_rank_, kTagCredit))
    credits_ += credit_from(*m);
}

std::optional<shm::BlockRef> MpiClientTransport::try_acquire(
    std::uint64_t size) {
  const std::uint64_t need = aligned(size);
  drain_credits();
  if (need > credits_) {
    ++stats_.acquire_failures;
    return std::nullopt;
  }
  credits_ -= need;
  const shm::BlockRef ref{next_offset_, size};
  next_offset_ += need;
  staging_.emplace(ref.offset, std::vector<std::byte>(kHeaderBytes + size));
  return ref;
}

std::optional<shm::BlockRef> MpiClientTransport::acquire_blocking(
    std::uint64_t size) {
  const std::uint64_t need = aligned(size);
  if (need > credit_limit_) return std::nullopt;  // can never fit
  drain_credits();
  while (need > credits_) {
    // The analogue of blocking on a full segment: wait for the server to
    // release blocks and return their credit.
    ++stats_.credit_waits;
    credits_ += credit_from(comm_.recv(server_rank_, kTagCredit));
  }
  credits_ -= need;
  const shm::BlockRef ref{next_offset_, size};
  next_offset_ += need;
  staging_.emplace(ref.offset, std::vector<std::byte>(kHeaderBytes + size));
  return ref;
}

std::span<std::byte> MpiClientTransport::view(const shm::BlockRef& block) {
  auto it = staging_.find(block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: view of an unknown block");
  return std::span<std::byte>(it->second).subspan(kHeaderBytes);
}

void MpiClientTransport::abandon(const shm::BlockRef& block) {
  auto it = staging_.find(block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: abandon of an unknown block");
  credits_ += aligned(it->second.size() - kHeaderBytes);
  staging_.erase(it);
}

bool MpiClientTransport::publish(const Event& event) {
  auto it = staging_.find(event.block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: publish of an unknown block");
  // The staging buffer already reserves header space: stamp the event into
  // the prefix and move the whole buffer to the wire — no payload copy.
  std::vector<std::byte> wire = std::move(it->second);
  staging_.erase(it);
  std::memcpy(wire.data(), &event, kHeaderBytes);
  stats_.bytes_shipped += wire.size() - kHeaderBytes;
  ++stats_.blocks_shipped;
  ++stats_.events_sent;
  comm_.send_bytes(std::move(wire), server_rank_, kTagEvent);
  return true;  // credit returns when the server releases the block
}

Status MpiClientTransport::try_publish(const Event& event) {
  // Sends are buffered and the event channel is unbounded; flow control
  // already happened at acquire time, so this never reports WOULD_BLOCK.
  publish(event);
  return Status::ok();
}

bool MpiClientTransport::post(const Event& event) {
  std::vector<std::byte> wire(kHeaderBytes);
  std::memcpy(wire.data(), &event, kHeaderBytes);
  comm_.send_bytes(std::move(wire), server_rank_, kTagEvent);
  ++stats_.events_sent;
  return true;
}

// ---------------------------------------------------------------------------
// MpiServerTransport
// ---------------------------------------------------------------------------

MpiServerTransport::MpiServerTransport(minimpi::Comm comm,
                                       std::shared_ptr<ShmFabric> fabric)
    : comm_(std::move(comm)),
      fabric_(std::move(fabric)),
      next_spill_offset_(fabric_->segment.capacity()) {
  DEDICORE_CHECK(comm_.valid(), "MpiServerTransport: invalid communicator");
}

std::optional<Event> MpiServerTransport::next_event() {
  minimpi::Message m = comm_.recv(minimpi::kAnySource, kTagEvent);
  DEDICORE_CHECK(m.payload.size() >= kHeaderBytes,
                 "MpiServerTransport: short event message");
  Event event;
  std::memcpy(&event, m.payload.data(), kHeaderBytes);
  ++stats_.events_received;
  if (event.type != EventType::kBlockWritten) return event;

  const std::uint64_t bytes = m.payload.size() - kHeaderBytes;
  DEDICORE_CHECK(bytes == event.block.size,
                 "MpiServerTransport: payload size does not match block ref");
  const std::span<const std::byte> payload(m.payload.data() + kHeaderBytes,
                                           bytes);
  Resident info;
  info.source_rank = m.source;
  info.credit = aligned(bytes);

  // Re-home the payload in the local segment; the credit protocol bounds
  // total residency by the segment capacity, but first-fit fragmentation
  // can still refuse a fitting block — spill to the heap rather than
  // deadlocking a single-threaded server on its own free.
  shm::BlockRef ref;
  if (auto placed = fabric_->segment.try_allocate(bytes)) {
    ref = *placed;
    std::memcpy(fabric_->segment.view(ref).data(), payload.data(), bytes);
  } else {
    ref = shm::BlockRef{next_spill_offset_, bytes};
    next_spill_offset_ += info.credit;
    info.spill.assign(payload.begin(), payload.end());
  }
  resident_.emplace(ref.offset, std::move(info));
  event.block = ref;
  ++stats_.blocks_received_remote;
  stats_.bytes_received_remote += bytes;
  return event;
}

std::span<const std::byte> MpiServerTransport::view(
    const shm::BlockRef& block) {
  auto it = resident_.find(block.offset);
  DEDICORE_CHECK(it != resident_.end(),
                 "MpiServerTransport: view of an unknown block");
  if (!it->second.spill.empty())
    return std::span<const std::byte>(it->second.spill);
  return std::as_const(fabric_->segment).view(block);
}

void MpiServerTransport::release(const shm::BlockRef& block) {
  auto it = resident_.find(block.offset);
  DEDICORE_CHECK(it != resident_.end(),
                 "MpiServerTransport: release of an unknown block");
  const Resident info = std::move(it->second);
  resident_.erase(it);
  if (info.spill.empty()) fabric_->segment.deallocate(block);
  comm_.send_value(info.credit, info.source_rank, kTagCredit);
}

}  // namespace dedicore::transport
