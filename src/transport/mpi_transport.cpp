#include "transport/mpi_transport.hpp"

#include <cstring>

#include "common/log.hpp"

namespace dedicore::transport {

namespace {

/// Credits are debited/returned in aligned units so both sides agree even
/// though the server's allocator rounds internally.
std::uint64_t aligned(std::uint64_t size) { return (size + 7) & ~std::uint64_t{7}; }

/// Staged blocks reserve wire-header space in front of the payload so
/// publish() can serialize without copying the payload.
constexpr std::uint64_t kHeaderBytes = sizeof(Event);

std::uint64_t credit_from(const minimpi::Message& message) {
  std::uint64_t returned = 0;
  DEDICORE_CHECK(message.payload.size() == sizeof(returned),
                 "MpiClientTransport: malformed credit message");
  std::memcpy(&returned, message.payload.data(), sizeof(returned));
  return returned;
}

}  // namespace

// ---------------------------------------------------------------------------
// MpiClientTransport
// ---------------------------------------------------------------------------

MpiClientTransport::MpiClientTransport(
    minimpi::Comm comm, int server_rank, std::uint64_t credit_bytes,
    std::shared_ptr<fault::FaultInjector> faults)
    : comm_(std::move(comm)),
      server_rank_(server_rank),
      credit_limit_(credit_bytes),
      credits_(credit_bytes),
      faults_(std::move(faults)) {
  DEDICORE_CHECK(comm_.valid(), "MpiClientTransport: invalid communicator");
  DEDICORE_CHECK(server_rank >= 0 && server_rank < comm_.size(),
                 "MpiClientTransport: server rank out of range");
  DEDICORE_CHECK(credit_bytes > 0, "MpiClientTransport: zero credit budget");
}

bool MpiClientTransport::fault_kills_now() {
  if (dead_) return true;
  if (!faults_) return false;
  if (!faults_->should_fire("client.die", comm_.rank())) return false;
  die();
  return true;
}

void MpiClientTransport::die() {
  if (dead_) return;
  dead_ = true;
  // A SIGKILL between flush points loses the staged frame: drop it on the
  // floor.  The credit it held is the server's to reclaim, not ours.
  staging_.clear();
  frame_records_.clear();
  frame_event_count_ = 0;
  frame_payload_bytes_ = 0;
  // The abort frame — the stand-in for the MPI layer's peer-death
  // notification.  Per-pair FIFO lands it behind every frame this client
  // really shipped.
  Event abort;
  abort.type = EventType::kClientAborted;
  abort.source = comm_.rank();
  wire::FrameHeader header;
  header.event_count = 1;
  header.frame_seq = frame_seq_++;
  std::vector<std::vector<std::byte>> parts;
  parts.emplace_back(sizeof(header));
  std::memcpy(parts.front().data(), &header, sizeof(header));
  parts.emplace_back(kHeaderBytes);
  std::memcpy(parts.back().data(), &abort, kHeaderBytes);
  comm_.send_bytes_parts(std::move(parts), server_rank_, kTagFrame);
}

void MpiClientTransport::drain_credits() {
  while (auto m = comm_.try_recv(server_rank_, kTagCredit))
    credits_ += credit_from(*m);
}

bool MpiClientTransport::can_never_fit(std::uint64_t need) {
  if (need <= credit_limit_) return false;
  // One shared diagnostic for both acquire flavors: no amount of waiting
  // (or flushing) produces credit beyond the budget, so this is a sizing
  // error, not backpressure.  Without the fail-fast the blocking path
  // would wait forever on credit that can never cover the request.
  // Logged once per client — a skip/adaptive caller retries every
  // iteration and would otherwise flood the log with the same line.
  if (!warned_never_fit_) {
    warned_never_fit_ = true;
    DEDICORE_LOG(kWarn) << "MpiClientTransport: block of " << need
                        << " aligned bytes can never fit the credit budget ("
                        << credit_limit_
                        << " bytes = this client's share of the server "
                           "segment); grow <buffer size> or add I/O nodes "
                           "(further occurrences not logged)";
  }
  ++stats_.acquire_failures;
  return true;
}

std::optional<shm::BlockRef> MpiClientTransport::try_acquire(
    std::uint64_t size) {
  if (dead_) return std::nullopt;
  const std::uint64_t need = aligned(size);
  if (can_never_fit(need)) return std::nullopt;
  drain_credits();
  if (need > credits_) {
    // Ship the staged frame so the server can process (and eventually
    // credit back) what this client already owes it, then fail: the
    // skip/adaptive policies key off the refusal.
    flush();
    drain_credits();
    if (need > credits_) {
      ++stats_.acquire_failures;
      return std::nullopt;
    }
  }
  credits_ -= need;
  const shm::BlockRef ref{next_offset_, size};
  next_offset_ += need;
  staging_.emplace(ref.offset, std::vector<std::byte>(kHeaderBytes + size));
  return ref;
}

std::optional<shm::BlockRef> MpiClientTransport::acquire_blocking(
    std::uint64_t size) {
  if (dead_) return std::nullopt;
  const std::uint64_t need = aligned(size);
  if (can_never_fit(need)) return std::nullopt;
  drain_credits();
  while (need > credits_) {
    // The analogue of blocking on a full segment: flush the staged frame
    // first (the credit we are about to wait for can only come back once
    // the server has seen those blocks), then wait for the server to
    // release blocks and return their credit.
    flush();
    ++stats_.credit_waits;
    credits_ += credit_from(comm_.recv(server_rank_, kTagCredit));
  }
  credits_ -= need;
  const shm::BlockRef ref{next_offset_, size};
  next_offset_ += need;
  staging_.emplace(ref.offset, std::vector<std::byte>(kHeaderBytes + size));
  return ref;
}

std::span<std::byte> MpiClientTransport::view(const shm::BlockRef& block) {
  auto it = staging_.find(block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: view of an unknown block");
  return std::span<std::byte>(it->second).subspan(kHeaderBytes);
}

void MpiClientTransport::abandon(const shm::BlockRef& block) {
  if (dead_) return;  // the corpse runs no cleanup; the server reclaims
  auto it = staging_.find(block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: abandon of an unknown block");
  credits_ += aligned(it->second.size() - kHeaderBytes);
  staging_.erase(it);
}

bool MpiClientTransport::publish(const Event& event) {
  if (fault_kills_now()) return false;
  auto it = staging_.find(event.block.offset);
  DEDICORE_CHECK(it != staging_.end(),
                 "MpiClientTransport: publish of an unknown block");
  // The staging buffer already reserves header space: stamp the event into
  // the prefix and move the whole buffer into the pending frame — no
  // payload copy here; the single copy happens when the frame's records
  // are gathered into one wire message at flush time.
  std::vector<std::byte> record = std::move(it->second);
  staging_.erase(it);
  std::memcpy(record.data(), &event, kHeaderBytes);
  frame_payload_bytes_ += record.size() - kHeaderBytes;
  frame_records_.push_back(std::move(record));
  ++frame_event_count_;
  stats_.bytes_shipped += event.block.size;
  ++stats_.blocks_shipped;
  ++stats_.events_sent;
  // Bound client-side staging memory: a huge iteration goes out in a few
  // frames instead of one unbounded one (order is preserved either way).
  if (frame_payload_bytes_ >= kMaxFrameBytes) flush();
  return true;
}

Status MpiClientTransport::try_publish(const Event& event) {
  // Staging is local and the wire channel is unbounded; flow control
  // already happened at acquire time, so this never reports WOULD_BLOCK.
  if (!publish(event)) return Status::closed("client dead");
  return Status::ok();
}

bool MpiClientTransport::post(const Event& event) {
  if (fault_kills_now()) return false;
  std::vector<std::byte> record(kHeaderBytes);
  std::memcpy(record.data(), &event, kHeaderBytes);
  frame_records_.push_back(std::move(record));
  ++frame_event_count_;
  ++stats_.events_sent;
  // Control events (end-iteration, signals, stop) close a batch: ship the
  // frame so the server sees everything up to and including this event.
  flush();
  return true;
}

void MpiClientTransport::flush() {
  if (dead_ || frame_event_count_ == 0) return;
  wire::FrameHeader header;
  header.event_count = frame_event_count_;
  header.frame_seq = frame_seq_++;
  std::vector<std::vector<std::byte>> parts;
  parts.reserve(frame_records_.size() + 1);
  parts.emplace_back(sizeof(header));
  std::memcpy(parts.front().data(), &header, sizeof(header));
  for (auto& record : frame_records_) parts.push_back(std::move(record));
  frame_records_.clear();
  frame_event_count_ = 0;
  frame_payload_bytes_ = 0;
  comm_.send_bytes_parts(std::move(parts), server_rank_, kTagFrame);
  ++stats_.wire_messages;
}

// ---------------------------------------------------------------------------
// MpiServerTransport
// ---------------------------------------------------------------------------

MpiServerTransport::MpiServerTransport(minimpi::Comm comm,
                                       std::shared_ptr<ShmFabric> fabric)
    : comm_(std::move(comm)),
      fabric_(std::move(fabric)),
      next_spill_offset_(fabric_->segment.capacity()) {
  DEDICORE_CHECK(comm_.valid(), "MpiServerTransport: invalid communicator");
}

void MpiServerTransport::set_worker_count(int workers,
                                          WorkerPoolOptions options) {
  DEDICORE_CHECK(next_frame_id_ == 0,
                 "MpiServerTransport: set_worker_count after consumption began");
  demux_.set_worker_count(workers, options);
}

void MpiServerTransport::set_idle_hook(std::function<bool()> hook) {
  demux_.set_idle_hook(std::move(hook));
}

std::optional<Event> MpiServerTransport::next_event(int worker) {
  // receive_frame blocks until a frame arrives; false means the
  // end-of-stream sentinel — the verdict the demux fans out to every
  // worker.  The MPI backend uses the demux even single-consumer: the
  // frame channel has no cheaper fast path to preserve.
  return demux_.next(
      worker, [this](std::vector<Event>& out) { return receive_frame(out); },
      events_received_);
}

void MpiServerTransport::end_of_stream() {
  comm_.send_bytes({}, comm_.rank(), kTagFrame);
}

bool MpiServerTransport::receive_frame(std::vector<Event>& out) {
  minimpi::Message m = comm_.recv(minimpi::kAnySource, kTagFrame);
  if (m.payload.empty()) return false;  // end_of_stream() sentinel
  wire::FrameReader reader(m.payload);
  FrameCredit frame;
  frame.source_rank = m.source;

  // Re-home payloads WITHOUT state_mutex_: the allocation + memcpy is the
  // expensive part of the demux, and other workers must keep releasing
  // blocks (credit!) and viewing payloads meanwhile.  next_frame_id_ and
  // next_spill_offset_ are leader-only state, ordered across successive
  // leaders by the demux's own lock handoff.  The blocks homed here are
  // invisible to view()/release() until their events are handed out, so
  // deferring the map inserts to one short critical section is safe.
  const std::uint64_t frame_id = next_frame_id_++;
  std::vector<std::pair<std::uint64_t, Resident>> homed;
  std::uint64_t frame_bytes = 0;
  while (reader.remaining() > 0) {
    std::span<const std::byte> payload;
    Event event = reader.next(&payload);
    if (event.type == EventType::kBlockWritten) {
      const std::uint64_t bytes = event.block.size;
      Resident info;
      info.frame_id = frame_id;
      info.credit = aligned(bytes);

      // Re-home the payload in the local segment; the credit protocol
      // bounds total residency by the segment capacity, but fragmentation
      // can still refuse a fitting block — spill to the heap rather than
      // deadlocking the server on its own free.
      shm::BlockRef ref;
      if (auto placed = fabric_->segment.try_allocate(bytes)) {
        ref = *placed;
        std::memcpy(fabric_->segment.view(ref).data(), payload.data(), bytes);
      } else {
        ref = shm::BlockRef{next_spill_offset_, bytes};
        next_spill_offset_ += info.credit;
        info.spill.assign(payload.begin(), payload.end());
      }
      homed.emplace_back(ref.offset, std::move(info));
      event.block = ref;
      ++frame.blocks_outstanding;
      frame_bytes += bytes;
    }
    out.push_back(event);
  }

  MutexLock state(state_mutex_);
  for (auto& [offset, info] : homed) resident_.emplace(offset, std::move(info));
  stats_.blocks_received_remote += homed.size();
  stats_.bytes_received_remote += frame_bytes;
  // Pure control frames owe no credit and need no accounting entry.
  if (frame.blocks_outstanding > 0) frames_.emplace(frame_id, frame);
  return true;
}

std::span<const std::byte> MpiServerTransport::view(
    const shm::BlockRef& block) {
  MutexLock state(state_mutex_);
  auto it = resident_.find(block.offset);
  DEDICORE_CHECK(it != resident_.end(),
                 "MpiServerTransport: view of an unknown block");
  // Safe to hand out past the unlock: unordered_map references are stable
  // and a resident entry only dies in release(), which the contract orders
  // after every view of that block.
  if (!it->second.spill.empty())
    return std::span<const std::byte>(it->second.spill);
  return std::as_const(fabric_->segment).view(block);
}

void MpiServerTransport::release(const shm::BlockRef& block) {
  std::uint64_t credit_to_send = 0;
  int credit_dest = -1;
  bool segment_resident = false;
  {
    MutexLock state(state_mutex_);
    auto it = resident_.find(block.offset);
    DEDICORE_CHECK(it != resident_.end(),
                   "MpiServerTransport: release of an unknown block");
    const Resident info = std::move(it->second);
    resident_.erase(it);
    segment_resident = info.spill.empty();

    // Credit returns at frame granularity: accumulate until the last block
    // of the frame is released, then ship ONE credit message.
    auto frame_it = frames_.find(info.frame_id);
    DEDICORE_CHECK(frame_it != frames_.end(),
                   "MpiServerTransport: release for an unknown frame");
    FrameCredit& frame = frame_it->second;
    frame.credit_accum += info.credit;
    DEDICORE_CHECK(frame.blocks_outstanding > 0,
                   "MpiServerTransport: frame over-released");
    if (--frame.blocks_outstanding == 0) {
      credit_to_send = frame.credit_accum;
      credit_dest = frame.source_rank;
      frames_.erase(frame_it);
      if (dead_ranks_.count(credit_dest)) {
        // Never send credit to a corpse: swallow it.  The dead client's
        // share of the flow budget is simply retired — exactly what the
        // reclaim invariant ("credits of a dead client return to the
        // system") means on a backend whose credit has no central pool.
        stats_.credits_reclaimed += credit_to_send;
        credit_dest = -1;
      } else {
        ++stats_.wire_messages;
      }
    }
  }
  if (segment_resident) fabric_->segment.deallocate(block);
  if (credit_dest >= 0)
    comm_.send_value(credit_to_send, credit_dest, kTagCredit);
}

void MpiServerTransport::reclaim_client(int source) {
  MutexLock state(state_mutex_);
  if (!dead_ranks_.insert(source).second) return;  // idempotent
  ++stats_.clients_aborted;
}

TransportStats MpiServerTransport::stats() const {
  MutexLock state(state_mutex_);
  TransportStats out = stats_;
  out.events_received = events_received_.load(std::memory_order_relaxed);
  out.steals = demux_.steals();
  out.idle_drains = demux_.idle_drains();
  out.controls_cancelled = demux_.controls_cancelled();
  return out;
}

}  // namespace dedicore::transport
