// Leader-follower demux shared by the pooled server transports.
//
// One ServerTransport, N concurrent next_event() consumers: exactly one
// worker at a time (the leader) runs the backend's blocking drain — queue
// pop_all on shm, frame recv on MPI — with the pool lock DROPPED, then
// routes the batch into per-worker FIFOs under the lock.  Followers wait
// on a condition variable, never on a lock the leader holds across its
// blocking call: that shape deadlocks when the leader waits for traffic
// that only a fed-but-parked worker can cause (e.g. the credit a blocked
// client is waiting for, which returns only after the parked worker
// completes an iteration).
//
// Every leadership exit — a routed batch or the drained verdict —
// notifies under the lock, so a follower either consumes its intake or
// takes over leadership; no wakeup can be missed.
//
// Routing is the client→worker *pinning rule*: client c's events always
// land on worker c mod N, so one worker observes a client's stream in
// order, exactly once — per-client FIFO survives the concurrency (the
// transport conformance suite enforces this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "transport/message.hpp"

namespace dedicore::transport {

class WorkerDemux {
 public:
  /// Call at most once, before the first next().  `workers` >= 1.
  void set_worker_count(int workers) {
    DEDICORE_CHECK(workers >= 1, "WorkerDemux: worker count must be >= 1");
    DEDICORE_CHECK(!consumed_, "WorkerDemux: set_worker_count after consumption began");
    workers_ = workers;
    intakes_.resize(static_cast<std::size_t>(workers_));
  }

  [[nodiscard]] int workers() const noexcept { return workers_; }

  /// The next event for `worker`.  `drain` is the backend's blocking
  /// intake: it appends a non-empty batch to its argument and returns
  /// true, or returns false when the stream is over (queue closed and
  /// empty / end-of-stream sentinel); it is invoked by one leader at a
  /// time, without the pool lock held.  `delivered` counts handed-out
  /// events for the backend's stats.
  template <typename DrainFn>
  std::optional<Event> next(int worker, DrainFn&& drain,
                            std::atomic<std::uint64_t>& delivered) {
    DEDICORE_CHECK(worker >= 0 && worker < workers_,
                   "WorkerDemux: worker index out of range");
    std::deque<Event>& mine = intakes_[static_cast<std::size_t>(worker)];
    std::unique_lock<std::mutex> lock(mutex_);
    consumed_ = true;
    for (;;) {
      if (!mine.empty()) {
        Event event = mine.front();
        mine.pop_front();
        delivered.fetch_add(1, std::memory_order_relaxed);
        return event;
      }
      if (drained_) return std::nullopt;
      if (!leader_active_) {
        // Lead one drain, with the pool lock dropped for the blocking
        // call so followers can keep consuming their intakes meanwhile.
        leader_active_ = true;
        lock.unlock();
        batch_.clear();
        const bool more = drain(batch_);
        lock.lock();
        leader_active_ = false;
        if (!more) {
          drained_ = true;
          cv_.notify_all();
          return std::nullopt;
        }
        for (const Event& event : batch_) {
          const int target = ((event.source % workers_) + workers_) % workers_;
          intakes_[static_cast<std::size_t>(target)].push_back(event);
        }
        cv_.notify_all();  // fed followers wake; one may take the lead
        continue;
      }
      cv_.wait(lock);
    }
  }

 private:
  int workers_ = 1;
  std::mutex mutex_;  ///< guards intakes_/leader_active_/drained_/consumed_
  std::condition_variable cv_;
  std::vector<std::deque<Event>> intakes_{1};  ///< per-worker FIFO, pinned
  std::vector<Event> batch_;                   ///< leader-only scratch
  bool leader_active_ = false;
  bool drained_ = false;
  bool consumed_ = false;
};

}  // namespace dedicore::transport
