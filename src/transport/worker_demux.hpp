// Leader-follower demux shared by the pooled server transports.
//
// One ServerTransport, N concurrent next_event() consumers: exactly one
// worker at a time (the leader) runs the backend's blocking drain — queue
// pop_all on shm, frame recv on MPI — with the pool lock DROPPED, then
// routes the batch into per-client FIFOs under the lock.  Followers wait
// on a condition variable, never on a lock the leader holds across its
// blocking call: that shape deadlocks when the leader waits for traffic
// that only a fed-but-parked worker can cause (e.g. the credit a blocked
// client is waiting for, which returns only after the parked worker
// completes an iteration).
//
// Every leadership exit — a routed batch or the drained verdict —
// notifies under the lock, so a follower either consumes its intake or
// takes over leadership; no wakeup can be missed.
//
// Client → worker assignment is an *ownership token* per client.  A new
// client starts owned by worker c mod N (the static pinning rule, and the
// only rule when stealing is off).  With stealing on, an idle worker whose
// own clients have nothing pending takes the longest-backlogged client
// from the busiest peer — the whole client moves, never individual events,
// so the client's stream still drains through one per-client FIFO.
//
// Ordering guarantees under stealing:
//  * exactly one worker owns a client at any instant (ownership changes
//    only under the pool lock), and only the owner pops that client's
//    events — delivery stays per-client FIFO, exactly-once;
//  * *control* events (end-iteration, skip, signal, stop) are per-client
//    barriers: one is handed out only when no previously delivered event
//    of that client is still being processed, so an iteration's close
//    never overtakes the indexing of that iteration's blocks.  Block
//    events carry no such dependency (the server's index is thread-safe
//    and blocks are keyed, not ordered), so consecutive blocks of one
//    client MAY be in flight on different workers after a steal — that
//    is exactly how a pool parallelizes one hot client's burst.
//
// Idle drain: a worker that has nothing local, nothing to steal, and no
// leadership to take would park on the condition variable.  When an idle
// hook is installed (the server wires it to storage::WriteBehind's
// try_drain_one), the worker first runs the hook with the lock dropped —
// pending disk writes drain on otherwise-wasted waits — and only parks
// (with a short timeout, to keep polling the hook) when the hook reports
// no work either.
//
// Dead clients and the control barrier (fault tolerance).  kClientAborted
// is itself a gated control: it is delivered only once the dead client's
// in-flight count is zero, which guarantees every block event the client
// published *before* dying has been handed out (and, by the re-entry
// contract, fully processed) before the server runs reclamation — that
// barrier is what makes reclaim sound.  The hazard is everything *behind*
// the abort: a zombie client can leave further events queued (an external
// kill racing already-staged pushes, a duplicate stop), and a gated
// control among them would never have its barrier observed by anyone —
// a sibling worker parked in the post-drain wait ("every head is a gated
// control") would sleep forever.  So on delivering an abort the demux
// marks the client aborted and *cancels* the remaining control events in
// its backlog (popped and counted in controls_cancelled, never handed
// out); controls routed for an already-aborted client are dropped at
// route() the same way.  Zombie *block* events still flow through — the
// server releases a dead client's blocks without indexing them, so the
// segment/credit they pin is returned through the normal release path
// rather than leaking.  Cancellation happens under the pool lock by the
// client's owning worker, and a backlog emptied by cancellation removes
// the client from its owner's ready list before anyone else can observe
// it, so the "client in ready iff backlog non-empty" invariant holds.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "transport/message.hpp"

namespace dedicore::transport {

class WorkerDemux {
 public:
  /// Call at most once, before the first next().  `workers` >= 1.
  void set_worker_count(int workers, WorkerPoolOptions options = {}) {
    DEDICORE_CHECK(workers >= 1, "WorkerDemux: worker count must be >= 1");
    MutexLock lock(mutex_);
    DEDICORE_CHECK(!consumed_, "WorkerDemux: set_worker_count after consumption began");
    DEDICORE_CHECK(options.steal_threshold >= 1,
                   "WorkerDemux: steal threshold must be >= 1");
    workers_ = workers;
    options_ = options;
    ready_.assign(static_cast<std::size_t>(workers_), {});
    last_client_.assign(static_cast<std::size_t>(workers_), kNoClient);
    backlog_totals_.assign(static_cast<std::size_t>(workers_), 0);
  }

  [[nodiscard]] int workers() const noexcept { return workers_; }

  /// Installs the idle-work hook: invoked (without the pool lock) by a
  /// worker that would otherwise park with nothing to consume, steal, or
  /// lead.  Returns true when it performed a unit of work (the worker
  /// re-checks its intake), false when there was nothing to do (the
  /// worker parks, briefly, and polls again).  Install before the first
  /// next(); the server wires this to WriteBehind::try_drain_one.
  void set_idle_hook(std::function<bool()> hook) {
    MutexLock lock(mutex_);
    DEDICORE_CHECK(!consumed_, "WorkerDemux: set_idle_hook after consumption began");
    idle_hook_ = std::move(hook);
  }

  /// Clients whose ownership moved to an idle worker.
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Units of idle-hook work performed by parked-instead workers.
  [[nodiscard]] std::uint64_t idle_drains() const noexcept {
    return idle_drains_.load(std::memory_order_relaxed);
  }
  /// Gated control events of dead clients cancelled instead of delivered.
  [[nodiscard]] std::uint64_t controls_cancelled() const noexcept {
    return controls_cancelled_.load(std::memory_order_relaxed);
  }

  /// The next event for `worker`.  `drain` is the backend's blocking
  /// intake: it appends a non-empty batch to its argument and returns
  /// true, or returns false when the stream is over (queue closed and
  /// empty / end-of-stream sentinel); it is invoked by one leader at a
  /// time, without the pool lock held.  `delivered` counts handed-out
  /// events for the backend's stats.
  template <typename DrainFn>
  std::optional<Event> next(int worker, DrainFn&& drain,
                            std::atomic<std::uint64_t>& delivered) {
    DEDICORE_CHECK(worker >= 0 && worker < workers_,
                   "WorkerDemux: worker index out of range");
    UniqueLock lock(mutex_);
    consumed_ = true;
    complete_previous(worker);
    for (;;) {
      if (std::optional<Event> event = take_local(worker)) {
        delivered.fetch_add(1, std::memory_order_relaxed);
        return event;
      }
      if (options_.steal && try_steal(worker)) continue;  // loop pops it
      if (drained_) {
        // A non-empty ready list here means every head is a gated
        // control: wait for the in-flight processor's re-entry (which
        // notifies) rather than stranding the event.
        if (ready_[static_cast<std::size_t>(worker)].empty())
          return std::nullopt;
        cv_.wait(lock);
        continue;
      }
      if (!leader_active_ && ready_[static_cast<std::size_t>(worker)].empty()) {
        // Lead one drain, with the pool lock dropped for the blocking
        // call so followers can keep consuming their intakes meanwhile.
        // A worker whose ready list is non-empty (every head a gated
        // control) must NOT lead: its gate clears while it would be stuck
        // in the blocking drain, stranding a control event no peer may
        // pop — it parks below instead, and the in-flight processor's
        // re-entry notify wakes it.
        leader_active_ = true;
        lock.unlock();
        batch_.clear();
        const bool more = drain(batch_);
        lock.lock();
        leader_active_ = false;
        if (!more) {
          drained_ = true;
          cv_.notify_all();
          continue;  // drain what is already routed for us, then exit
        }
        for (const Event& event : batch_) route(event);
        cv_.notify_all();  // fed followers wake; one may take the lead
        continue;
      }
      // Nothing to deliver right now (someone else is draining, or our
      // only pending heads are gated controls): do idle work if a hook
      // is installed, otherwise park until a route or a gate-clearing
      // re-entry notifies.
      if (idle_hook_) {
        lock.unlock();
        const bool worked = idle_hook_();
        lock.lock();
        if (worked) {
          idle_drains_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Nothing pending there either; park briefly so new idle work
        // (enqueued by a worker completing an iteration) is still picked
        // up while the event stream is quiet.
        cv_.wait_for(lock, std::chrono::microseconds(200));
        continue;
      }
      cv_.wait(lock);
    }
  }

 private:
  static constexpr int kNoClient = std::numeric_limits<int>::min();

  struct ClientState {
    std::deque<Event> backlog;  ///< undelivered events, publish/post order
    int owner = 0;              ///< the one worker allowed to pop backlog
    int in_flight = 0;          ///< delivered, processing not yet finished
    bool aborted = false;       ///< kClientAborted delivered; cancel zombie
                                ///< controls instead of gating on them
  };

  /// A control event is a per-client barrier; a block is not (see header
  /// comment).  Only call with a non-empty backlog (callers hold the pool
  /// lock; the state reference itself is mutex_-guarded data).
  static bool deliverable(const ClientState& state) {
    return state.backlog.front().type == EventType::kBlockWritten ||
           state.in_flight == 0;
  }

  /// The worker finished processing whatever next() handed it last time
  /// (callers are strictly pop-process-pop loops, so re-entry is the
  /// completion signal).  When that drops a client's in-flight count to
  /// zero, a peer may be parked on that client's gated control — notify.
  void complete_previous(int worker) DEDICORE_REQUIRES(mutex_) {
    const int client = last_client_[static_cast<std::size_t>(worker)];
    if (client == kNoClient) return;
    last_client_[static_cast<std::size_t>(worker)] = kNoClient;
    ClientState& state = clients_.at(client);
    if (--state.in_flight == 0 && !state.backlog.empty()) cv_.notify_all();
  }

  /// Pops the next deliverable event among the clients `worker` owns,
  /// rotating across them for fairness (per-client order is the deque's).
  std::optional<Event> take_local(int worker) DEDICORE_REQUIRES(mutex_) {
    std::deque<int>& ready = ready_[static_cast<std::size_t>(worker)];
    for (std::size_t scanned = ready.size(); scanned > 0; --scanned) {
      const int client = ready.front();
      ready.pop_front();
      ClientState& state = clients_.at(client);
      if (state.backlog.empty()) continue;  // emptied by cancellation
      if (!deliverable(state)) {
        ready.push_back(client);  // gated control; retry after in-flight
        continue;
      }
      Event event = state.backlog.front();
      state.backlog.pop_front();
      --backlog_totals_[static_cast<std::size_t>(worker)];
      ++state.in_flight;
      last_client_[static_cast<std::size_t>(worker)] = client;
      if (event.type == EventType::kClientAborted && !state.aborted) {
        state.aborted = true;
        cancel_zombie_controls(state);
      }
      if (!state.backlog.empty()) ready.push_back(client);
      return event;
    }
    return std::nullopt;
  }

  /// Owner-only, under the pool lock, right after delivering a client's
  /// abort: removes every remaining *control* event from its backlog (a
  /// dead client's barriers would otherwise be waited on forever — see the
  /// header's fault-tolerance note).  Blocks stay: the server releases a
  /// dead client's blocks without indexing, returning their resources.
  void cancel_zombie_controls(ClientState& state) DEDICORE_REQUIRES(mutex_) {
    std::uint64_t cancelled = 0;
    std::erase_if(state.backlog, [&](const Event& event) {
      if (event.type == EventType::kBlockWritten) return false;
      ++cancelled;
      return true;
    });
    if (cancelled == 0) return;
    backlog_totals_[static_cast<std::size_t>(state.owner)] -= cancelled;
    controls_cancelled_.fetch_add(cancelled, std::memory_order_relaxed);
  }

  /// Leader-only: appends one drained event to its client's backlog,
  /// minting the ownership token (pinning rule) on first contact.
  void route(const Event& event) DEDICORE_REQUIRES(mutex_) {
    auto [it, inserted] = clients_.try_emplace(event.source);
    ClientState& state = it->second;
    if (inserted)
      state.owner = ((event.source % workers_) + workers_) % workers_;
    if (state.aborted && event.type != EventType::kBlockWritten) {
      // Zombie control behind an already-delivered abort: cancel, never
      // gate on a dead client's barrier.
      controls_cancelled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (state.backlog.empty())
      ready_[static_cast<std::size_t>(state.owner)].push_back(event.source);
    state.backlog.push_back(event);
    ++backlog_totals_[static_cast<std::size_t>(state.owner)];
  }

  /// Moves the longest-backlogged deliverable client of the busiest peer
  /// to `worker`.  After the stream drained, the threshold drops to one
  /// event so a peer that stopped consuming cannot strand a tail.
  bool try_steal(int worker) DEDICORE_REQUIRES(mutex_) {
    const std::size_t threshold =
        drained_ ? 1 : static_cast<std::size_t>(options_.steal_threshold);
    int best_client = kNoClient;
    std::uint64_t best_owner_load = 0;
    std::size_t best_backlog = 0;
    for (const auto& [client, state] : clients_) {
      if (state.owner == worker || state.backlog.size() < threshold) continue;
      if (!deliverable(state)) continue;  // a gated control helps no one
      const std::uint64_t owner_load =
          backlog_totals_[static_cast<std::size_t>(state.owner)];
      if (best_client == kNoClient || owner_load > best_owner_load ||
          (owner_load == best_owner_load && state.backlog.size() > best_backlog)) {
        best_client = client;
        best_owner_load = owner_load;
        best_backlog = state.backlog.size();
      }
    }
    if (best_client == kNoClient) return false;
    ClientState& state = clients_.at(best_client);
    std::deque<int>& victim = ready_[static_cast<std::size_t>(state.owner)];
    victim.erase(std::find(victim.begin(), victim.end(), best_client));
    backlog_totals_[static_cast<std::size_t>(state.owner)] -=
        state.backlog.size();
    state.owner = worker;
    backlog_totals_[static_cast<std::size_t>(worker)] += state.backlog.size();
    ready_[static_cast<std::size_t>(worker)].push_back(best_client);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Configuration, written only by set_worker_count / set_idle_hook
  /// before the first next() (both crash on a late call via consumed_).
  /// Deliberately NOT mutex_-guarded: next() validates the worker index
  /// against workers_ before locking, and the leader invokes idle_hook_
  /// with the pool lock dropped — both sound because the fields are
  /// immutable once consumption begins.
  int workers_ = 1;
  WorkerPoolOptions options_;
  std::function<bool()> idle_hook_;

  /// Guards all demux state below (except the atomics and batch_).
  Mutex mutex_{"demux.pool"};
  CondVar cv_;
  std::unordered_map<int, ClientState> clients_ DEDICORE_GUARDED_BY(mutex_);
  /// Per worker: owned clients with a non-empty backlog.
  std::vector<std::deque<int>> ready_ DEDICORE_GUARDED_BY(mutex_){1};
  /// Per worker: client of the event being processed.
  std::vector<int> last_client_ DEDICORE_GUARDED_BY(mutex_){kNoClient};
  /// Per worker: queued events across owned clients ("busyness").
  std::vector<std::uint64_t> backlog_totals_ DEDICORE_GUARDED_BY(mutex_){0};
  /// Leader-only scratch: filled by drain() with the pool lock DROPPED,
  /// so it cannot be mutex_-guarded — mutual exclusion comes from
  /// leader_active_ (exactly one leader at a time, elected under the
  /// lock), which is why followers never touch it.
  std::vector<Event> batch_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> idle_drains_{0};
  std::atomic<std::uint64_t> controls_cancelled_{0};
  bool leader_active_ DEDICORE_GUARDED_BY(mutex_) = false;
  bool drained_ DEDICORE_GUARDED_BY(mutex_) = false;
  bool consumed_ DEDICORE_GUARDED_BY(mutex_) = false;
};

}  // namespace dedicore::transport
