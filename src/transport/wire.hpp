// Wire framing for the MPI transport's batched data path.
//
// Instead of one tagged message per block, a client stages the events (and
// block payloads) of an iteration and flushes them as ONE frame per
// (iteration, destination) — the cross-node mirror of the per-node
// aggregation the paper's shared-memory design gets for free.  A frame is:
//
//   FrameHeader                            (fixed size, magic-checked)
//   record 0: Event [+ payload bytes]      (payload iff kBlockWritten,
//   record 1: Event [+ payload bytes]       length = event.block.size)
//   ...
//
// Records preserve publish/post order, so demuxing a frame preserves the
// per-client FIFO guarantee of the transport contract.  Flow credit is
// accounted at the same granularity: the server returns ONE credit message
// per frame, once every block the frame carried has been released.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/status.hpp"
#include "transport/message.hpp"

namespace dedicore::transport::wire {

inline constexpr std::uint32_t kFrameMagic = 0x44434652u;  // "DCFR"

/// Prefix of every frame message on the event channel.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t event_count = 0;
  std::uint64_t frame_seq = 0;  ///< client-side frame counter (diagnostics)
};

static_assert(std::is_trivially_copyable_v<FrameHeader>,
              "FrameHeader is wire-serialized");

/// Incremental parser over a received frame payload.  The frame was
/// assembled in-process, so malformed input is a logic error: parsing
/// aborts via DEDICORE_CHECK rather than returning soft errors.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::byte> payload)
      : payload_(payload) {
    DEDICORE_CHECK(payload_.size() >= sizeof(FrameHeader),
                   "FrameReader: short frame");
    std::memcpy(&header_, payload_.data(), sizeof(FrameHeader));
    DEDICORE_CHECK(header_.magic == kFrameMagic,
                   "FrameReader: bad frame magic");
    cursor_ = sizeof(FrameHeader);
  }

  [[nodiscard]] const FrameHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::uint32_t remaining() const noexcept {
    return header_.event_count - consumed_;
  }

  /// Reads the next record; `payload` receives the block bytes for
  /// kBlockWritten events and an empty span otherwise.
  Event next(std::span<const std::byte>* payload) {
    DEDICORE_CHECK(remaining() > 0, "FrameReader: read past last record");
    DEDICORE_CHECK(cursor_ + sizeof(Event) <= payload_.size(),
                   "FrameReader: truncated event record");
    Event event;
    std::memcpy(&event, payload_.data() + cursor_, sizeof(Event));
    cursor_ += sizeof(Event);
    if (event.type == EventType::kBlockWritten) {
      // Subtraction form: `cursor_ + size` could wrap on a corrupted size
      // and sail past the bound it exists to enforce.
      DEDICORE_CHECK(event.block.size <= payload_.size() - cursor_,
                     "FrameReader: truncated block payload");
      *payload = payload_.subspan(cursor_, event.block.size);
      cursor_ += event.block.size;
    } else {
      *payload = {};
    }
    ++consumed_;
    if (remaining() == 0)
      DEDICORE_CHECK(cursor_ == payload_.size(),
                     "FrameReader: trailing bytes after last record");
    return event;
  }

 private:
  std::span<const std::byte> payload_;
  FrameHeader header_;
  std::size_t cursor_ = 0;
  std::uint32_t consumed_ = 0;
};

}  // namespace dedicore::transport::wire
