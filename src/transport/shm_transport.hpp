// ShmTransport — the paper's zero-copy data path: one shared-memory
// segment per node plus one bounded event queue per dedicated core.
//
// Clients allocate blocks straight out of the shared segment (so write()
// costs one memcpy and alloc/commit costs zero) and push only the
// fixed-size Event through the queue; servers read the same segment and
// free blocks after the plugin pipeline ran.  Backpressure is the
// segment's bounded capacity and the queue's bounded length, exactly as in
// §V.C.1.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "shm/bounded_queue.hpp"
#include "transport/transport.hpp"
#include "transport/worker_demux.hpp"

namespace dedicore::transport {

/// The node-local shared state both shm endpoints attach to: the segment
/// and one event queue per local server.  Cores mode shares one instance
/// across all ranks of a node; an MPI I/O node builds a queue-less one
/// (queue_count = 0) purely as residency for received blocks.
struct ShmFabric {
  ShmFabric(std::uint64_t segment_capacity, int queue_count,
            std::size_t queue_capacity)
      : segment(segment_capacity) {
    queues.reserve(static_cast<std::size_t>(queue_count));
    for (int q = 0; q < queue_count; ++q)
      queues.push_back(
          std::make_unique<shm::BoundedQueue<Event>>(queue_capacity));
  }

  shm::Segment segment;
  std::vector<std::unique_ptr<shm::BoundedQueue<Event>>> queues;

  /// Closes every queue and unblocks segment waiters (shutdown path and
  /// the conformance suite's close/drain scenario).
  void close() {
    for (auto& queue : queues) queue->close();
    segment.close();
  }
};

class ShmClientTransport final : public ClientTransport {
 public:
  /// Attaches to `fabric` as a producer for the server owning
  /// `fabric->queues[server_index]`.
  ShmClientTransport(std::shared_ptr<ShmFabric> fabric, int server_index);

  std::optional<shm::BlockRef> try_acquire(std::uint64_t size) override;
  std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) override;
  std::span<std::byte> view(const shm::BlockRef& block) override;
  void abandon(const shm::BlockRef& block) override;
  bool publish(const Event& event) override;
  Status try_publish(const Event& event) override;
  bool post(const Event& event) override;
  [[nodiscard]] TransportStats stats() const override { return stats_; }

 private:
  std::shared_ptr<ShmFabric> fabric_;
  shm::BoundedQueue<Event>& queue_;
  TransportStats stats_;
};

class ShmServerTransport final : public ServerTransport {
 public:
  ShmServerTransport(std::shared_ptr<ShmFabric> fabric, int server_index);

  /// Multi-worker mode: N concurrent next_event() consumers share this
  /// server's one queue through the leader-follower demux (WorkerDemux);
  /// the leader's blocking drain is the queue's batch pop_all.  Options
  /// select the client→worker assignment (pinned or work-stealing).
  void set_worker_count(int workers, WorkerPoolOptions options = {}) override;
  void set_idle_hook(std::function<bool()> hook) override;
  std::optional<Event> next_event(int worker) override;
  using ServerTransport::next_event;
  void end_of_stream() override { close_intake(); }
  std::span<const std::byte> view(const shm::BlockRef& block) override;
  void release(const shm::BlockRef& block) override;
  [[nodiscard]] TransportStats stats() const override;

  /// Closes this server's intake queue; next_event() drains what is left
  /// (including anything already batched locally) and then returns nullopt.
  void close_intake();

 private:
  std::optional<Event> next_event_single();

  std::shared_ptr<ShmFabric> fabric_;
  shm::BoundedQueue<Event>& queue_;
  /// Local intake batch (single-consumer mode): next_event() drains the
  /// queue with one pop_all critical section and hands events out from
  /// here, so the consumer touches the shared lock once per burst instead
  /// of once per event.
  std::vector<Event> batch_;
  std::size_t batch_cursor_ = 0;
  WorkerDemux demux_;  ///< pooled mode (set_worker_count > 1)
  std::atomic<std::uint64_t> events_received_{0};
  TransportStats stats_;
};

}  // namespace dedicore::transport
