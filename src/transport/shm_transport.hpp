// ShmTransport — the paper's zero-copy data path: one shared-memory
// segment per node plus one bounded event queue per dedicated core.
//
// Clients allocate blocks straight out of the shared segment (so write()
// costs one memcpy and alloc/commit costs zero) and push only the
// fixed-size Event through the queue; servers read the same segment and
// free blocks after the plugin pipeline ran.  Backpressure is the
// segment's bounded capacity and the queue's bounded length, exactly as in
// §V.C.1.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "shm/bounded_queue.hpp"
#include "transport/transport.hpp"
#include "transport/worker_demux.hpp"

namespace dedicore::transport {

/// The node-local shared state both shm endpoints attach to: the segment
/// and one event queue per local server.  Cores mode shares one instance
/// across all ranks of a node; an MPI I/O node builds a queue-less one
/// (queue_count = 0) purely as residency for received blocks.
///
/// The fabric also carries the node's *liveness ledger*.  A real deployment
/// cannot trust a SIGKILL'd client to clean up after itself, so the shared
/// state — not the client — records what each client holds: every block a
/// client acquired but has not yet published (ownership of published blocks
/// passes to the server, which frees them through release()), plus a
/// per-client liveness epoch bumped on every queue push.  A node monitor
/// that sees a client's epoch frozen while the process is gone injects
/// kClientAborted into the server's queue on the corpse's behalf; in this
/// in-process reproduction, ClientTransport::die() plays the monitor —
/// freezing the epoch and enqueueing the abort — and the server's
/// reclaim_client() frees the ledger's outstanding blocks.
struct ShmFabric {
  ShmFabric(std::uint64_t segment_capacity, int queue_count,
            std::size_t queue_capacity)
      : segment(segment_capacity) {
    queues.reserve(static_cast<std::size_t>(queue_count));
    for (int q = 0; q < queue_count; ++q)
      queues.push_back(
          std::make_unique<shm::BoundedQueue<Event>>(queue_capacity));
  }

  shm::Segment segment;
  std::vector<std::unique_ptr<shm::BoundedQueue<Event>>> queues;

  /// Liveness ledger (see above).  Guarded by `ledger_mutex`.
  struct Ledger {
    std::vector<shm::BlockRef> outstanding;  ///< acquired, not yet published
    std::uint64_t epoch = 0;                 ///< bumped per queue push
    bool dead = false;                       ///< epoch frozen by the monitor
  };
  /// Leaf lock: every ledger_* method is a self-contained critical
  /// section — nothing is acquired while it is held.
  Mutex ledger_mutex{"shm.ledger"};
  std::unordered_map<int, Ledger> ledgers DEDICORE_GUARDED_BY(ledger_mutex);

  void ledger_acquired(int client, const shm::BlockRef& block) {
    if (client < 0) return;
    MutexLock lock(ledger_mutex);
    ledgers[client].outstanding.push_back(block);
  }
  void ledger_released(int client, const shm::BlockRef& block) {
    if (client < 0) return;
    MutexLock lock(ledger_mutex);
    auto& outstanding = ledgers[client].outstanding;
    for (auto it = outstanding.begin(); it != outstanding.end(); ++it) {
      if (it->offset == block.offset) {
        outstanding.erase(it);
        return;
      }
    }
  }
  void ledger_heartbeat(int client) {
    if (client < 0) return;
    MutexLock lock(ledger_mutex);
    ++ledgers[client].epoch;
  }
  /// Freezes the epoch; returns false if already dead (idempotence).
  bool ledger_mark_dead(int client) {
    MutexLock lock(ledger_mutex);
    Ledger& ledger = ledgers[client];
    if (ledger.dead) return false;
    ledger.dead = true;
    return true;
  }
  /// Takes (and clears) the dead client's outstanding blocks for reclaim.
  std::vector<shm::BlockRef> ledger_take_outstanding(int client) {
    MutexLock lock(ledger_mutex);
    auto it = ledgers.find(client);
    if (it == ledgers.end()) return {};
    return std::exchange(it->second.outstanding, {});
  }

  /// Closes every queue and unblocks segment waiters (shutdown path and
  /// the conformance suite's close/drain scenario).
  void close() {
    for (auto& queue : queues) queue->close();
    segment.close();
  }
};

class ShmClientTransport final : public ClientTransport {
 public:
  /// Attaches to `fabric` as a producer for the server owning
  /// `fabric->queues[server_index]`.  When `client_index` >= 0 the
  /// transport participates in the fabric's liveness ledger (acquired
  /// blocks are recorded for post-mortem reclaim, queue pushes advance the
  /// epoch) and probes the optional fault injector's "client.die" point on
  /// every publish/post — the deterministic "client dies after event K"
  /// scenario.  The two-argument form (anonymous, no ledger, no faults)
  /// preserves every pre-fault-layer call site.
  ShmClientTransport(std::shared_ptr<ShmFabric> fabric, int server_index,
                     int client_index = -1,
                     std::shared_ptr<fault::FaultInjector> faults = nullptr);

  std::optional<shm::BlockRef> try_acquire(std::uint64_t size) override;
  std::optional<shm::BlockRef> acquire_blocking(std::uint64_t size) override;
  std::span<std::byte> view(const shm::BlockRef& block) override;
  void abandon(const shm::BlockRef& block) override;
  bool publish(const Event& event) override;
  Status try_publish(const Event& event) override;
  bool post(const Event& event) override;
  void die() override;
  [[nodiscard]] bool dead() const override { return dead_; }
  [[nodiscard]] TransportStats stats() const override { return stats_; }

 private:
  /// True when an armed "client.die" fault kills this client at this call.
  bool fault_kills_now();

  std::shared_ptr<ShmFabric> fabric_;
  shm::BoundedQueue<Event>& queue_;
  int client_index_ = -1;
  std::shared_ptr<fault::FaultInjector> faults_;
  bool dead_ = false;
  TransportStats stats_;
};

class ShmServerTransport final : public ServerTransport {
 public:
  ShmServerTransport(std::shared_ptr<ShmFabric> fabric, int server_index);

  /// Multi-worker mode: N concurrent next_event() consumers share this
  /// server's one queue through the leader-follower demux (WorkerDemux);
  /// the leader's blocking drain is the queue's batch pop_all.  Options
  /// select the client→worker assignment (pinned or work-stealing).
  void set_worker_count(int workers, WorkerPoolOptions options = {}) override;
  void set_idle_hook(std::function<bool()> hook) override;
  std::optional<Event> next_event(int worker) override;
  using ServerTransport::next_event;
  void end_of_stream() override { close_intake(); }
  std::span<const std::byte> view(const shm::BlockRef& block) override;
  void release(const shm::BlockRef& block) override;
  /// Frees the dead client's acquired-but-unpublished blocks straight from
  /// the fabric's liveness ledger (a killed process cannot deallocate its
  /// own shared-memory blocks).  Idempotent; callable from any worker.
  void reclaim_client(int source) override;
  [[nodiscard]] TransportStats stats() const override;

  /// Closes this server's intake queue; next_event() drains what is left
  /// (including anything already batched locally) and then returns nullopt.
  void close_intake();

 private:
  std::optional<Event> next_event_single();

  std::shared_ptr<ShmFabric> fabric_;
  shm::BoundedQueue<Event>& queue_;
  /// Local intake batch (single-consumer mode): next_event() drains the
  /// queue with one pop_all critical section and hands events out from
  /// here, so the consumer touches the shared lock once per burst instead
  /// of once per event.
  std::vector<Event> batch_;
  std::size_t batch_cursor_ = 0;
  WorkerDemux demux_;  ///< pooled mode (set_worker_count > 1)
  std::atomic<std::uint64_t> events_received_{0};
  std::atomic<std::uint64_t> clients_aborted_{0};
  std::atomic<std::uint64_t> blocks_reclaimed_{0};
  std::atomic<std::uint64_t> bytes_reclaimed_{0};
  TransportStats stats_;
};

}  // namespace dedicore::transport
