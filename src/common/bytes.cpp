#include "common/bytes.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/status.hpp"

namespace dedicore {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_throughput_gbps(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_second / 1e9);
  return buf;
}

std::uint64_t parse_bytes(std::string_view text) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  skip_ws();
  std::size_t start = i;
  bool seen_dot = false;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) ||
          (text[i] == '.' && !seen_dot))) {
    if (text[i] == '.') seen_dot = true;
    ++i;
  }
  if (i == start) throw ConfigError("parse_bytes: no number in '" + std::string(text) + "'");
  const double value = std::stod(std::string(text.substr(start, i - start)));
  skip_ws();
  std::string unit;
  while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i]))) {
    unit += static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
    ++i;
  }
  skip_ws();
  if (i != text.size())
    throw ConfigError("parse_bytes: trailing characters in '" + std::string(text) + "'");

  double multiplier = 1.0;
  if (unit.empty() || unit == "b") {
    multiplier = 1.0;
  } else if (unit == "k" || unit == "kb") {
    multiplier = 1e3;
  } else if (unit == "m" || unit == "mb") {
    multiplier = 1e6;
  } else if (unit == "g" || unit == "gb") {
    multiplier = 1e9;
  } else if (unit == "kib") {
    multiplier = static_cast<double>(kKiB);
  } else if (unit == "mib") {
    multiplier = static_cast<double>(kMiB);
  } else if (unit == "gib") {
    multiplier = static_cast<double>(kGiB);
  } else {
    throw ConfigError("parse_bytes: unknown unit '" + unit + "'");
  }
  const double bytes = value * multiplier;
  if (bytes < 0.0 || bytes > 9.2e18)
    throw ConfigError("parse_bytes: value out of range");
  return static_cast<std::uint64_t>(std::llround(bytes));
}

}  // namespace dedicore
