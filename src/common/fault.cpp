#include "common/fault.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace dedicore::fault {

namespace {

const std::vector<std::string_view> kKnownPoints = {
    "client.die",
    "posix.pwrite",
    "posix.fsync",
    "posix.rename",
    "posix.crash_on_close",
    "write_behind.enqueue_stall",
    "write_behind.write",
};

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) noexcept : rng_(seed) {}

bool FaultInjector::known_point(std::string_view point) noexcept {
  return std::find(kKnownPoints.begin(), kKnownPoints.end(), point) !=
         kKnownPoints.end();
}

const std::vector<std::string_view>& FaultInjector::known_points() noexcept {
  return kKnownPoints;
}

void FaultInjector::arm(FaultSpec spec) {
  if (!known_point(spec.point)) {
    std::string known;
    for (auto p : kKnownPoints) {
      if (!known.empty()) known += ", ";
      known += p;
    }
    throw ConfigError("fault: unknown injection point '" + spec.point +
                      "' (known: " + known + ")");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0)
    throw ConfigError("fault '" + spec.point + "': probability " +
                      std::to_string(spec.probability) + " outside [0, 1]");
  if (spec.count == 0)
    throw ConfigError("fault '" + spec.point + "': count must be >= 1");
  MutexLock lock(mutex_);
  specs_.push_back(Armed{std::move(spec), 0, 0});
  armed_count_.store(static_cast<int>(specs_.size()),
                     std::memory_order_release);
}

std::optional<Fired> FaultInjector::fire(std::string_view point,
                                         int target) noexcept {
  if (armed_count_.load(std::memory_order_acquire) == 0) return std::nullopt;
  MutexLock lock(mutex_);
  for (Armed& armed : specs_) {
    if (armed.spec.point != point) continue;
    if (armed.spec.target >= 0 && armed.spec.target != target) continue;
    ++armed.hits;
    if (armed.hits <= armed.spec.after) continue;
    if (armed.fired >= armed.spec.count) continue;
    if (armed.spec.probability < 1.0 && !rng_.chance(armed.spec.probability))
      continue;
    ++armed.fired;
    return Fired{armed.spec.magnitude};
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::hits(std::string_view point) const noexcept {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const Armed& armed : specs_)
    if (armed.spec.point == point) total += armed.hits;
  return total;
}

std::uint64_t FaultInjector::fired(std::string_view point) const noexcept {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const Armed& armed : specs_)
    if (armed.spec.point == point) total += armed.fired;
  return total;
}

}  // namespace dedicore::fault
