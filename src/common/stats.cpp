#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/status.hpp"

namespace dedicore {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of moments.
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::spread() const noexcept {
  if (min <= 0.0) return 0.0;
  return max / min;
}

std::string Summary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.6g p50=%.6g p99=%.6g max=%.6g mean=%.6g sd=%.6g",
                count, min, median, p99, max, mean, stddev);
  return buf;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

void SampleSet::merge(const SampleSet& other) { add_all(other.samples_); }

namespace {
double percentile_sorted(const std::vector<double>& sorted, double q) {
  DEDICORE_CHECK(!sorted.empty(), "percentile of empty sample set");
  DEDICORE_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double SampleSet::percentile(double q) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

Summary SampleSet::summary() const {
  Summary s;
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  OnlineStats moments;
  for (double x : sorted) moments.add(x);
  s.count = sorted.size();
  s.min = sorted.front();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  s.max = sorted.back();
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DEDICORE_CHECK(hi > lo && bins > 0, "Histogram requires hi > lo, bins > 0");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bin_low(std::size_t i) const {
  DEDICORE_CHECK(i < counts_.size(), "Histogram bin index out of range");
  return lo_ + bin_width_ * static_cast<double>(i);
}

std::string Histogram::to_string(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.4g,%10.4g) %8llu ",
                  bin_low(i), bin_low(i) + bin_width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace dedicore
