// Deterministic fault injection.
//
// Every failure scenario in the fault-tolerance test suite — "client 3 dies
// after its 5th event", "pwrite returns EIO twice", "the write-behind
// producer stalls" — is expressed as a `FaultSpec` armed on a shared
// `FaultInjector`.  Components that can fail consult the injector at *named
// injection points*; the injector decides, deterministically from its seed
// and per-spec hit counters, whether the fault fires at this particular
// call.  Nothing in the production path behaves differently when no spec is
// armed: `fire()` on an empty injector is a single relaxed load.
//
// Determinism argument: each spec keeps its own hit counter, incremented
// under the injector mutex on every matching probe, and fires exactly when
//   hits > after  &&  fired < count  &&  rng < probability
// With probability == 1.0 (the default) the RNG is never consulted, so the
// firing pattern depends only on the order of matching probes — which the
// tests make deterministic (single client thread per target, seeded
// schedules).  With probability < 1.0 the xoshiro stream is seeded
// explicitly, so a given (seed, probe-order) pair replays bit-for-bit.
//
// Point names are validated against a registry at arm() time so a typo in a
// test or an XML `<faults>` block is a loud ConfigError, not a scenario
// that silently never fires.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::fault {

/// One armed fault.  `point` must be a registered injection-point name.
struct FaultSpec {
  std::string point;            ///< Injection point, e.g. "posix.pwrite".
  int target = -1;              ///< Match only this target id (-1 = any).
  std::uint64_t after = 0;      ///< Skip the first `after` matching probes.
  std::uint64_t count = 1;      ///< Fire at most `count` times.
  double probability = 1.0;     ///< Bernoulli gate once eligible.
  std::uint64_t magnitude = 0;  ///< Point-specific knob (e.g. stall usec).
};

/// Result of a fired probe; carries the spec's magnitude to the caller.
struct Fired {
  std::uint64_t magnitude = 0;
};

/// Registry of injection points wired into the codebase.  Kept in one place
/// so `known_points()` doubles as documentation of where faults can land.
///
///   client.die               ClientTransport publish/post — the client
///                            "process" dies after its K-th event; target is
///                            the client index.
///   posix.pwrite             PosixBackend::pwrite fails with EIO.
///   posix.fsync              PosixBackend close-time fsync fails with EIO.
///   posix.rename             PosixBackend temp→final rename fails with EIO.
///   posix.crash_on_close     PosixBackend::close drops the handle without
///                            fsync/rename — SIGKILL mid-write; leaves a
///                            torn temp file for the recovery scan.
///   write_behind.enqueue_stall  WriteBehind::enqueue sleeps `magnitude`
///                            microseconds before taking the budget lock.
///   write_behind.write       WriteBehind's drain fails the job's backend
///                            write with EIO (transient-retry exercise for
///                            backends without their own points).
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) noexcept;

  /// Arms a fault.  Throws ConfigError on an unknown point name or an
  /// out-of-range probability.  Thread-safe, but typically called once at
  /// configuration time.
  void arm(FaultSpec spec);

  /// Probes the named point.  Returns the fired spec's magnitude when a
  /// matching armed fault fires at this call, nullopt otherwise.  Cheap
  /// when nothing is armed (single atomic load, no lock).
  std::optional<Fired> fire(std::string_view point, int target = -1) noexcept;

  /// Convenience wrapper for call sites that only need the boolean.
  bool should_fire(std::string_view point, int target = -1) noexcept {
    return fire(point, target).has_value();
  }

  /// Total matching probes seen at `point` (across all armed specs for it).
  std::uint64_t hits(std::string_view point) const noexcept;

  /// Total times any spec at `point` actually fired.
  std::uint64_t fired(std::string_view point) const noexcept;

  /// True if at least one spec is armed.
  bool armed() const noexcept { return armed_count_.load(std::memory_order_acquire) > 0; }

  /// Validation hook for config parsing.
  static bool known_point(std::string_view point) noexcept;
  static const std::vector<std::string_view>& known_points() noexcept;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable Mutex mutex_{"fault.state"};
  std::vector<Armed> specs_ DEDICORE_GUARDED_BY(mutex_);
  Rng rng_ DEDICORE_GUARDED_BY(mutex_);
  std::atomic<int> armed_count_{0};
};

}  // namespace dedicore::fault
