// Wall-clock helpers for the real-thread runtime.  The DES engine has its
// own virtual clock (src/des); this header is only about measuring and
// pacing real executions.
//
// Deterministic testing hook: virtual time.  When enabled (a global test
// switch), every thread carries its own virtual clock starting at 0;
// sleep_seconds()/spin_seconds() advance the calling thread's clock
// instantly instead of blocking, and Stopwatch/now_seconds() read it.
// Under virtual time a thread's measured elapsed equals exactly what it
// slept — so a code path that never sleeps (e.g. the client-visible
// shared-memory write) measures exactly zero, and wall-clock comparisons
// like "the Damaris stall is a fraction of the baseline's" become exact
// instead of racy.  Blocking synchronization (mutexes, condition
// variables, queue pops) still happens in real time and contributes
// nothing to virtual measurements.
#pragma once

#include <cstdint>

namespace dedicore {

/// Monotonic seconds: steady_clock normally, the calling thread's virtual
/// clock when virtual time is enabled.
double now_seconds() noexcept;

/// Global switch for virtual time (test hook; flip only while no
/// measurement straddles the change).  Threads started afterwards begin
/// at virtual second 0.
void set_virtual_time_enabled(bool enabled) noexcept;
bool virtual_time_enabled() noexcept;

/// Monotonic stopwatch returning seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(now_seconds()) {}

  void reset() { start_ = now_seconds(); }

  [[nodiscard]] double elapsed_seconds() const {
    return now_seconds() - start_;
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(elapsed_seconds() * 1e9);
  }

 private:
  double start_;
};

/// Sleep for a duration expressed in seconds (sub-millisecond supported).
/// Under virtual time: advances the thread's virtual clock and returns.
void sleep_seconds(double seconds);

/// Busy-spin for very short waits where sleep granularity is too coarse;
/// used by the calibrated-cost compute kernel at sub-100us scales.  Under
/// virtual time it advances the clock like sleep_seconds.
void spin_seconds(double seconds);

}  // namespace dedicore
