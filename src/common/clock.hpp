// Wall-clock helpers for the real-thread runtime.  The DES engine has its
// own virtual clock (src/des); this header is only about measuring and
// pacing real executions.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace dedicore {

/// Monotonic stopwatch returning seconds as double.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Sleep for a duration expressed in seconds (sub-millisecond supported).
inline void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Busy-spin for very short waits where sleep granularity is too coarse;
/// used by the calibrated-cost compute kernel at sub-100us scales.
void spin_seconds(double seconds);

}  // namespace dedicore
