// Clang Thread Safety Analysis annotation macros.
//
// The repo's correctness surface IS its lock discipline: dedicated cores
// exchange blocks through a lock-managed segment and bounded queues, and
// every concurrency bug found so far (the follower-parked-on-leader's-lock
// deadlock, the BoundedQueue close/pop_all race, the pop_all
// waiter-accounting audit) was a lock-protocol violation that dynamic
// tools could only catch on the interleavings tests happened to execute.
// These macros move that class of bug to compile time: every
// mutex-guarded field declares its mutex (DEDICORE_GUARDED_BY), every
// hold-the-lock helper declares its precondition (DEDICORE_REQUIRES), and
// clang's -Wthread-safety proves, per translation unit, that no access
// violates a declaration.  CI builds with -Werror=thread-safety (the
// DEDICORE_THREAD_SAFETY CMake option); under GCC — which has no such
// analysis — every macro expands to nothing, so the annotations are free.
//
// Conventions (see docs/concurrency.md for the repo-wide lock hierarchy):
//   * annotate with the *macro* forms below, never raw __attribute__;
//   * member mutexes are dedicore::Mutex (common/sync.hpp), the annotated
//     capability wrapper — std::mutex is not a capability and guards
//     nothing, and only the wrapper carries the runtime lockdep layer;
//   * private helpers that assume the lock are suffixed _locked and carry
//     DEDICORE_REQUIRES(mutex_);
//   * a genuine invariant the analysis cannot express is waived with
//     DEDICORE_NO_THREAD_SAFETY_ANALYSIS plus an in-header argument for
//     WHY the code is correct — never by loosening the annotations.
#pragma once

// clang >= 3.6 understands the capability-based attribute spellings; the
// __has_attribute probe keeps the header honest if that ever regresses.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DEDICORE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DEDICORE_THREAD_ANNOTATION
#define DEDICORE_THREAD_ANNOTATION(x)  // no-op off clang (GCC, MSVC)
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define DEDICORE_CAPABILITY(x) DEDICORE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define DEDICORE_SCOPED_CAPABILITY DEDICORE_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define DEDICORE_GUARDED_BY(x) DEDICORE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x`.
#define DEDICORE_PT_GUARDED_BY(x) DEDICORE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and still held
/// on exit) — the annotation for *_locked helpers.
#define DEDICORE_REQUIRES(...) \
  DEDICORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define DEDICORE_ACQUIRE(...) \
  DEDICORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define DEDICORE_RELEASE(...) \
  DEDICORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define DEDICORE_TRY_ACQUIRE(...) \
  DEDICORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (anti-deadlock: the
/// function acquires them itself, so holding one on entry self-deadlocks).
#define DEDICORE_EXCLUDES(...) \
  DEDICORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (runtime fact, not proof) that the capability is held.
#define DEDICORE_ASSERT_CAPABILITY(x) \
  DEDICORE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define DEDICORE_RETURN_CAPABILITY(x) \
  DEDICORE_THREAD_ANNOTATION(lock_returned(x))

/// Waiver: suppresses the analysis for one function.  Use ONLY with an
/// adjacent comment arguing why the unprovable code is correct.
#define DEDICORE_NO_THREAD_SAFETY_ANALYSIS \
  DEDICORE_THREAD_ANNOTATION(no_thread_safety_analysis)
