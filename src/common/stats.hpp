// Statistics collectors used by the benchmark harnesses: streaming
// mean/variance (Welford), min/max, and percentile summaries of retained
// samples.  The variability experiment (E2) reports min / median / p99 /
// max write times per strategy, which is what `SampleSet::summary()`
// produces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dedicore {

/// Streaming moments without retaining samples.  O(1) space.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another collector (parallel reduction of per-rank stats).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number-plus summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  /// max/min ratio — the paper's "orders of magnitude between the slowest
  /// and the fastest process" metric.  Returns 0 when min == 0.
  [[nodiscard]] double spread() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Retains samples and computes exact percentiles on demand.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);
  void merge(const SampleSet& other);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Linear-interpolated percentile, q in [0,1].  Sorts a copy; call
  /// summary() instead when several quantiles are needed.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] Summary summary() const;

 private:
  std::vector<double> samples_;
};

/// Fixed-bin linear histogram for jitter distribution plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// ASCII rendering (one line per bin), for bench output.
  [[nodiscard]] std::string to_string(std::size_t width = 40) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace dedicore
