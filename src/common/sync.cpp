#include "common/sync.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace dedicore {
namespace lockdep {
namespace {

// One lock this thread currently holds.
struct Held {
  const void* instance = nullptr;
  std::uint32_t cls = 0;  ///< 0 when acquired via try_lock (untracked order)
  const char* name = nullptr;
};

// All global lockdep state lives under one ordinary std::mutex — it must
// not be a dedicore::Mutex, which would recurse into this very machinery.
std::mutex g_mu;
std::unordered_map<std::string, std::uint32_t>& class_ids() {
  static auto* ids = new std::unordered_map<std::string, std::uint32_t>();
  return *ids;
}
std::vector<std::string>& class_names() {  // id -> name (id 0 unused)
  static auto* names = new std::vector<std::string>(1);
  return *names;
}
// The lock-order graph: after[a] holds every class b some thread acquired
// while holding a ("a before b").
std::unordered_map<std::uint32_t, std::set<std::uint32_t>>& graph() {
  static auto* g = new std::unordered_map<std::uint32_t, std::set<std::uint32_t>>();
  return *g;
}
// Witness of each edge: the held chain of the thread that recorded it.
std::map<std::uint64_t, std::string>& edge_witness() {
  static auto* w = new std::map<std::uint64_t, std::string>();
  return *w;
}
// Pairs already reported, so one inversion aborts (or is recorded by the
// test handler) exactly once instead of on every later acquisition.
std::set<std::uint64_t>& reported_pairs() {
  static auto* r = new std::set<std::uint64_t>();
  return *r;
}
std::function<void(const Report&)>& handler() {
  static auto* h = new std::function<void(const Report&)>();
  return *h;
}

std::atomic<int> g_enabled{-1};  ///< -1 undecided, 0 off, 1 on
std::atomic<std::uint64_t> g_reports{0};

thread_local std::vector<Held> t_held;

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::string chain_string(const char* acquiring) {
  std::string out;
  for (const Held& held : t_held) {
    out += held.name;
    out += " -> ";
  }
  out += acquiring;
  return out;
}

// True when `to` is reachable from `from` along recorded edges; fills
// `path` (class ids, from -> ... -> to) when found.
bool find_path(std::uint32_t from, std::uint32_t to,
               std::vector<std::uint32_t>* path) {
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::vector<std::uint32_t> stack{from};
  parent[from] = from;
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (node == to) {
      std::vector<std::uint32_t> reversed{to};
      for (std::uint32_t walk = to; walk != from; walk = parent[walk])
        reversed.push_back(parent[walk]);
      path->assign(reversed.rbegin(), reversed.rend());
      return true;
    }
    auto it = graph().find(node);
    if (it == graph().end()) continue;
    for (std::uint32_t next : it->second) {
      if (parent.emplace(next, node).second) stack.push_back(next);
    }
  }
  return false;
}

void emit_report(std::string message) {
  g_reports.fetch_add(1, std::memory_order_relaxed);
  std::function<void(const Report&)> local;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    local = handler();
  }
  Report report{std::move(message)};
  if (local) {
    local(report);
    return;
  }
  fatal(report.message);
}

}  // namespace

bool enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    bool on = false;
#ifndef NDEBUG
    on = true;  // Debug builds default lockdep on
#endif
    if (const char* env = std::getenv("DEDICORE_LOCKDEP");
        env != nullptr && *env != '\0')
      on = !(env[0] == '0' && env[1] == '\0');
    state = on ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_failure_handler(std::function<void(const Report&)> new_handler) {
  std::lock_guard<std::mutex> lock(g_mu);
  handler() = std::move(new_handler);
}

std::uint64_t report_count() noexcept {
  return g_reports.load(std::memory_order_relaxed);
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  graph().clear();
  edge_witness().clear();
  reported_pairs().clear();
  g_reports.store(0, std::memory_order_relaxed);
}

namespace detail {

std::uint32_t intern_class(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto [it, inserted] =
      class_ids().try_emplace(std::string(name),
                              static_cast<std::uint32_t>(class_names().size()));
  if (inserted) class_names().emplace_back(name);
  return it->second;
}

// Pre-acquisition bookkeeping for a BLOCKING lock: self-relock check, then
// order-edge recording + cycle detection against everything already held.
// Runs BEFORE the native lock call so an inversion reports even when this
// particular interleaving would have deadlocked rather than returned.
void note_before_lock(const void* instance, std::uint32_t cls,
                      const char* name) {
  for (const Held& held : t_held) {
    if (held.instance == instance) {
      std::ostringstream msg;
      msg << "lockdep: self-relock of '" << name
          << "': this thread already holds that exact mutex (held chain: "
          << chain_string(name) << ")";
      emit_report(msg.str());
      return;  // the caller will now block on itself if this is not a test
    }
  }
  std::string pending_report;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    for (const Held& held : t_held) {
      // try_lock acquisitions (cls 0) never block, so they impose no
      // ordering; same-class nesting is out of scope by design (header).
      if (held.cls == 0 || held.cls == cls) continue;
      const std::uint64_t key = edge_key(held.cls, cls);
      if (graph()[held.cls].contains(cls)) continue;   // edge already known
      if (reported_pairs().contains(key)) continue;    // inversion already told
      // New edge held.cls -> cls: does the reverse direction already have
      // a path?  If so this acquisition closes a cycle — an ABBA (or
      // longer) inversion.
      std::vector<std::uint32_t> path;
      if (find_path(cls, held.cls, &path)) {
        reported_pairs().insert(key);
        std::ostringstream msg;
        msg << "lockdep: lock-order inversion (ABBA): acquiring '" << name
            << "' while holding '" << class_names()[held.cls]
            << "'\n  this thread:  " << chain_string(name)
            << "\n  but the opposite order is on record:";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          auto witness = edge_witness().find(edge_key(path[i], path[i + 1]));
          msg << "\n    '" << class_names()[path[i]] << "' before '"
              << class_names()[path[i + 1]] << "'";
          if (witness != edge_witness().end())
            msg << "  (recorded by a thread holding: " << witness->second
                << ")";
        }
        pending_report = msg.str();
        break;  // report once; skip recording the contradictory edge
      }
      graph()[held.cls].insert(cls);
      edge_witness().emplace(key, chain_string(name));
    }
  }
  // Outside g_mu: the handler (or fatal) must be free to do anything.
  if (!pending_report.empty()) emit_report(std::move(pending_report));
}

void note_locked(const void* instance, std::uint32_t cls, const char* name) {
  t_held.push_back(Held{instance, cls, name});
}

void note_unlock(const void* instance) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Locked before lockdep was enabled (tests flip it mid-process): the
  // entry never existed — nothing to pop.
}

}  // namespace detail
}  // namespace lockdep

void Mutex::lock() {
  if (lockdep::enabled()) {
    std::uint32_t cls = class_id_.load(std::memory_order_relaxed);
    if (cls == 0) {
      cls = lockdep::detail::intern_class(lock_class_);
      class_id_.store(cls, std::memory_order_relaxed);
    }
    lockdep::detail::note_before_lock(this, cls, lock_class_);
    mu_.lock();
    lockdep::detail::note_locked(this, cls, lock_class_);
    return;
  }
  mu_.lock();
}

void Mutex::unlock() {
  mu_.unlock();
  if (lockdep::enabled()) lockdep::detail::note_unlock(this);
}

bool Mutex::try_lock() {
  if (!mu_.try_lock()) return false;
  if (lockdep::enabled()) {
    // A successful try_lock cannot have blocked, so it imposes no order
    // edge (cls 0 in the held set); it still participates in self-relock
    // detection and held-chain reports via its name.
    lockdep::detail::note_locked(this, 0, lock_class_);
  }
  return true;
}

void CondVar::wait(UniqueLock& lock) {
  DEDICORE_CHECK(lock.owns_lock(), "CondVar::wait: lock not held");
  // Adopt the already-held native mutex for the duration of the wait and
  // release the adoption afterwards: ownership bookkeeping (UniqueLock's
  // owned_ flag, the lockdep held set) is untouched — the mutex is locked
  // again by the time wait() returns, exactly as the caller left it.
  std::unique_lock<std::mutex> native(lock.mutex()->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

std::cv_status CondVar::wait_for_impl(UniqueLock& lock,
                                      std::chrono::nanoseconds dur) {
  DEDICORE_CHECK(lock.owns_lock(), "CondVar::wait_for: lock not held");
  std::unique_lock<std::mutex> native(lock.mutex()->mu_, std::adopt_lock);
  const std::cv_status verdict = cv_.wait_for(native, dur);
  native.release();
  return verdict;
}

}  // namespace dedicore
