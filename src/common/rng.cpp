#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/status.hpp"

namespace dedicore {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  DEDICORE_CHECK(n > 0, "Rng::next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ull - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  // Box–Muller; discard the second value to keep the stream predictable.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  DEDICORE_CHECK(rate > 0.0, "Rng::exponential requires rate > 0");
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::bounded_pareto(double lo, double hi, double alpha) noexcept {
  DEDICORE_CHECK(lo > 0.0 && hi > lo && alpha > 0.0,
                 "Rng::bounded_pareto requires 0 < lo < hi, alpha > 0");
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::chance(double probability) noexcept {
  return next_double() < probability;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace dedicore
