#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dedicore {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
bool log_enabled(LogLevel level) noexcept { return level >= log_level(); }

namespace log_detail {
void emit(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace log_detail

}  // namespace dedicore
