#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/sync.hpp"

namespace dedicore {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole-line emission so interleaved threads cannot shear a
// log record; guards the stderr stream, not any dedicore state.
Mutex g_emit_mutex{"log.emit"};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
bool log_enabled(LogLevel level) noexcept { return level >= log_level(); }

namespace log_detail {
void emit(LogLevel level, std::string_view message) {
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace log_detail

}  // namespace dedicore
