// Deterministic random number generation and the distributions used by the
// storage / variability models.
//
// All stochastic behaviour in the repo (filesystem jitter, interference
// arrivals, workload perturbation) flows through `Rng` seeded explicitly,
// so every experiment is reproducible bit-for-bit from its seed.  The
// generator is xoshiro256++, which is fast, has a 2^256-1 period, and is
// trivially splittable for per-rank streams.
#pragma once

#include <array>
#include <cstdint>

namespace dedicore {

/// xoshiro256++ PRNG (Blackman & Vigna).  Not a cryptographic generator.
class Rng {
 public:
  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (one value per call, no caching so the
  /// stream position is predictable).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).  Used for I/O-time jitter — heavy right
  /// tail matching the "orders of magnitude" spread reported in the paper.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (events per unit time); interference
  /// arrival process.
  double exponential(double rate) noexcept;

  /// Bounded Pareto on [lo, hi] with tail index alpha; burst sizes.
  double bounded_pareto(double lo, double hi, double alpha) noexcept;

  /// Bernoulli trial.
  bool chance(double probability) noexcept;

  /// Derive an unrelated child stream (per-rank / per-OST streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace dedicore
