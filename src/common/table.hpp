// Console table / CSV emitter used by every bench binary.
//
// Each experiment harness prints the same rows the paper reports; keeping
// formatting here means every bench emits both a human-readable aligned
// table and (optionally) machine-readable CSV with one call.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dedicore {

/// Column-aligned text table.  Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Render with padded columns and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Print to stream with an optional title banner.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("12.35"); trims to %g when precision < 0.
std::string fmt_double(double v, int precision = 2);
/// Integer with thousands separators ("9,216").
std::string fmt_count(std::uint64_t v);
/// "1.50x" style speedup cell.
std::string fmt_speedup(double v);
/// Percentage cell: fmt_percent(0.9234) == "92.3%".
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace dedicore
