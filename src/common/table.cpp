#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "common/status.hpp"

namespace dedicore {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DEDICORE_CHECK(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DEDICORE_CHECK(cells.size() == header_.size(),
                 "Table row arity does not match header");
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  DEDICORE_CHECK(i < rows_.size(), "Table row index out of range");
  return rows_[i];
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  os << to_string();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  if (precision < 0) {
    std::snprintf(buf, sizeof(buf), "%g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    out += digits[i];
    const std::size_t remaining = n - i - 1;
    if (remaining > 0 && remaining % 3 == 0) out += ',';
  }
  return out;
}

std::string fmt_speedup(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace dedicore
