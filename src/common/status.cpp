#include "common/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace dedicore {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kWouldBlock: return "WOULD_BLOCK";
    case StatusCode::kClosed: return "CLOSED";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void fatal(std::string_view message) {
  std::fprintf(stderr, "[dedicore FATAL] %.*s\n",
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace dedicore
