// Annotated synchronization primitives + runtime lock-order (deadlock)
// detection.
//
// Every mutex-owning layer in the repo uses these wrappers instead of the
// raw std:: primitives, for two reasons:
//
//  1. STATIC: dedicore::Mutex is a Clang Thread Safety Analysis
//     *capability* (thread_annotations.hpp), so DEDICORE_GUARDED_BY
//     fields and DEDICORE_REQUIRES helpers are checked at compile time
//     under -Werror=thread-safety.  std::mutex carries no annotations and
//     proves nothing.
//
//  2. DYNAMIC: the wrapper carries a lockdep layer (Linux-lockdep style)
//     for the one property static annotations cannot express — global
//     lock *ordering*.  Each Mutex belongs to a named lock class
//     ("demux.pool", "write_behind.state", ...); every acquisition
//     records held-class -> acquired-class edges into a process-wide
//     lock-order graph, and an edge that closes a cycle (an ABBA
//     inversion) reports at the FIRST occurrence — naming both orders'
//     lock chains — even on interleavings that never actually deadlock in
//     the test run.  Enabled when DEDICORE_LOCKDEP=1 is in the
//     environment (or by default in Debug/!NDEBUG builds; DEDICORE_LOCKDEP=0
//     force-disables); when off, the cost per lock is one relaxed atomic
//     load.
//
// Lock classes are keyed by NAME, not by instance: all BoundedQueues
// share the classes "queue.tail"/"queue.head", every PosixBackend shares
// "posix.handles", and so on — an ordering bug between any two instances
// of two layers is a bug between the layers.  Two deliberate consequences:
//
//   * relocking the SAME instance on one thread is always reported (a
//     non-recursive mutex self-deadlock);
//   * nesting two DIFFERENT instances of the SAME class is not tracked
//     as an ordering edge (a->a edges are skipped): the codebase has no
//     such nesting — layers that hold two locks always hold two distinct
//     classes — and tracking it would false-positive on sibling
//     instances locked sequentially by different threads.  If a future
//     layer needs intra-class nesting, give the inner mutex its own
//     class name.
//
// Condition-variable waits keep the mutex in the thread's held set for
// the whole wait: the unlock/relock inside the wait re-establishes an
// ordering the thread already recorded at the original acquisition, so no
// new edges can appear — and any lock the waiter still holds *around* the
// wait keeps (correctly) ordering against everything the woken path
// acquires.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/thread_annotations.hpp"

namespace dedicore {

class CondVar;

namespace lockdep {

/// True when acquisitions are being tracked.  Decided once, at first use,
/// from the environment (DEDICORE_LOCKDEP=1/0) with !NDEBUG as the
/// default; tests flip it explicitly with set_enabled().
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// A detected violation: a lock-order cycle (ABBA inversion) or a
/// self-relock.  `message` names both orders' lock chains.
struct Report {
  std::string message;
};

/// Installs a handler invoked instead of aborting (tests record the
/// report and keep running).  Passing nullptr restores the default
/// handler, which prints the report and aborts via dedicore::fatal —
/// a lock-order inversion in a concurrency substrate is never ignorable.
void set_failure_handler(std::function<void(const Report&)> handler);

/// Reports produced since the last reset() (any thread).
[[nodiscard]] std::uint64_t report_count() noexcept;

/// Clears the global lock-order graph and the report counter so tests
/// can stage independent scenarios.  Must not run concurrently with
/// tracked acquisitions.
void reset();

}  // namespace lockdep

/// Annotated mutex capability.  `lock_class` names the lockdep class this
/// instance belongs to (a string literal; see docs/concurrency.md for the
/// repo-wide hierarchy).  Non-recursive, like the std::mutex it wraps.
class DEDICORE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* lock_class = "mutex") noexcept
      : lock_class_(lock_class) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DEDICORE_ACQUIRE();
  void unlock() DEDICORE_RELEASE();
  [[nodiscard]] bool try_lock() DEDICORE_TRY_ACQUIRE(true);

  [[nodiscard]] const char* lock_class() const noexcept { return lock_class_; }

 private:
  friend class CondVar;  // waits on the wrapped native mutex

  std::mutex mu_;
  const char* lock_class_;
  /// Interned lockdep class id; 0 until first tracked acquisition.
  std::atomic<std::uint32_t> class_id_{0};
};

/// RAII lock_guard equivalent (scoped capability).
class DEDICORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DEDICORE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DEDICORE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII unique_lock equivalent (scoped capability): supports the
/// drop-the-lock-around-a-blocking-call pattern (leader-follower demux,
/// inline write-behind drains) and is what CondVar waits on.
class DEDICORE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) DEDICORE_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owned_ = true;
  }
  ~UniqueLock() DEDICORE_RELEASE() {
    if (owned_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() DEDICORE_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() DEDICORE_RELEASE() {
    owned_ = false;
    mu_->unlock();
  }

  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }
  [[nodiscard]] Mutex* mutex() const noexcept { return mu_; }

 private:
  Mutex* mu_;
  bool owned_ = false;
};

/// Condition variable paired with dedicore::Mutex via UniqueLock.
///
/// Deliberately NO predicate overloads: a predicate lambda is analyzed by
/// TSA as a separate unannotated function, so guarded fields read inside
/// it would need waivers.  Call sites write the canonical explicit loop
///
///     while (!condition_over_guarded_fields) cv.wait(lock);
///
/// whose body the analysis checks against the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `lock` (fatal otherwise).  The mutex stays in the
  /// thread's lockdep held set across the wait (see header comment).
  void wait(UniqueLock& lock);

  /// Timed wait; std::cv_status::timeout on expiry.
  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return wait_for_impl(
        lock, std::chrono::duration_cast<std::chrono::nanoseconds>(dur));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::cv_status wait_for_impl(UniqueLock& lock,
                               std::chrono::nanoseconds dur);

  std::condition_variable cv_;
};

}  // namespace dedicore
