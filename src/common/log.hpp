// Minimal thread-safe leveled logger.
//
// Benchmarks and the Damaris server use it for progress/diagnostic lines;
// default level is kWarn so test and bench output stays clean.  The logger
// is process-global: simulated MPI "ranks" are threads of one process and
// share it, which mirrors one log file per node on a real machine.
#pragma once

#include <sstream>
#include <string_view>

namespace dedicore {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

namespace log_detail {
void emit(LogLevel level, std::string_view message);
}  // namespace log_detail

/// Global threshold; messages below it are discarded before formatting.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level) noexcept;

/// Stream-style logging: DEDICORE_LOG(kInfo) << "wrote " << n << " bytes";
#define DEDICORE_LOG(level_name)                                     \
  for (bool dedicore_log_once =                                      \
           ::dedicore::log_enabled(::dedicore::LogLevel::level_name); \
       dedicore_log_once; dedicore_log_once = false)                 \
  ::dedicore::LogLine(::dedicore::LogLevel::level_name)

/// One formatted log line; flushed on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_detail::emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace dedicore
