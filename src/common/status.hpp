// Lightweight status / error-code type used across the library.
//
// Runtime data paths (shared-memory allocation, queue operations, storage
// calls) report failures through `Status` rather than exceptions so that
// callers on hot paths can branch cheaply; configuration parsing and other
// setup-time code throws `ConfigError` (see xml/ and core/configuration).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace dedicore {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named entity (variable, file, plugin) missing
  kAlreadyExists,     ///< unique entity created twice
  kOutOfMemory,       ///< bounded segment / queue capacity exhausted
  kWouldBlock,        ///< nonblocking op could not proceed
  kClosed,            ///< endpoint shut down
  kIoError,           ///< storage backend failure
  kDataLoss,          ///< stored bytes unrecoverable (checksum mismatch,
                      ///< missing chunk replica) — retrying cannot help
  kFailedPrecondition,///< object not in the required state
  kAborted,           ///< operation cancelled (e.g. skip-iteration policy)
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a code ("OK", "OUT_OF_MEMORY", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// Result of an operation: a code plus an optional context message.
///
/// `Status::ok()` is cheap to construct and copy (empty message). The class
/// is deliberately tiny — no payload; functions that produce a value use
/// output parameters or return std::optional alongside a Status.
///
/// The type itself is [[nodiscard]]: EVERY function returning a Status —
/// the storage backends, the write-behind queue, the transports'
/// try_publish — warns when a caller drops the verdict on the floor.
/// The few intentional discards in the codebase (fire-and-forget writes
/// in benches/examples, where a skip-policy ABORTED is the policy
/// working) say so with an explicit (void) cast.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }
  static Status invalid_argument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status not_found(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status already_exists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status out_of_memory(std::string m) { return {StatusCode::kOutOfMemory, std::move(m)}; }
  static Status would_block(std::string m) { return {StatusCode::kWouldBlock, std::move(m)}; }
  static Status closed(std::string m) { return {StatusCode::kClosed, std::move(m)}; }
  static Status io_error(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status data_loss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
  static Status failed_precondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OUT_OF_MEMORY: segment full (need 4096 bytes)" or "OK".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Thrown for unrecoverable misuse detected at setup time (bad XML
/// configuration, mismatched layouts, double initialization).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Abort-with-message used for internal invariant violations.  Unlike
/// assert() it is active in all build types: a broken invariant in a
/// concurrency substrate must never be silently ignored.
[[noreturn]] void fatal(std::string_view message);

#define DEDICORE_CHECK(cond, msg)                 \
  do {                                            \
    if (!(cond)) ::dedicore::fatal(msg);          \
  } while (0)

}  // namespace dedicore
