#include "common/clock.hpp"

namespace dedicore {

void spin_seconds(double seconds) {
  if (seconds <= 0.0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    // Relax the pipeline; on x86 this lowers power and SMT contention.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace dedicore
