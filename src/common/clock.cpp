#include "common/clock.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace dedicore {

namespace {

std::atomic<bool> g_virtual_time{false};
thread_local double t_virtual_now = 0.0;

double steady_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool virtual_time_enabled() noexcept {
  return g_virtual_time.load(std::memory_order_relaxed);
}

void set_virtual_time_enabled(bool enabled) noexcept {
  if (enabled) t_virtual_now = 0.0;  // fresh epoch for the enabling thread
  g_virtual_time.store(enabled, std::memory_order_relaxed);
}

double now_seconds() noexcept {
  return virtual_time_enabled() ? t_virtual_now : steady_seconds();
}

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  if (virtual_time_enabled()) {
    t_virtual_now += seconds;
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void spin_seconds(double seconds) {
  if (seconds <= 0.0) return;
  if (virtual_time_enabled()) {
    t_virtual_now += seconds;
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    // Relax the pipeline; on x86 this lowers power and SMT contention.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace dedicore
