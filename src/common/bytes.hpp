// Byte-size formatting/parsing helpers ("12.5 MiB", "10 GB/s") used in
// configuration files and bench output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dedicore {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// "1.50 MiB" style rendering (binary units).
std::string format_bytes(std::uint64_t bytes);

/// Throughput rendering in decimal GB/s to match the paper's units.
std::string format_throughput_gbps(double bytes_per_second);

/// Parses "64MB", "1.5 GiB", "4096", "2k".  Accepts decimal (kB/MB/GB) and
/// binary (KiB/MiB/GiB) suffixes, case-insensitive, optional whitespace.
/// Throws ConfigError on malformed input.
std::uint64_t parse_bytes(std::string_view text);

}  // namespace dedicore
