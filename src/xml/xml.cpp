#include "xml/xml.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dedicore::xml {

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

bool Node::has_attribute(std::string_view key) const noexcept {
  for (const auto& [k, v] : attributes_)
    if (k == key) return true;
  return false;
}

std::optional<std::string> Node::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_)
    if (k == key) return v;
  return std::nullopt;
}

std::string Node::attribute_or(std::string_view key,
                               std::string_view fallback) const {
  if (auto v = attribute(key)) return *v;
  return std::string(fallback);
}

const std::string& Node::require_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_)
    if (k == key) return v;
  throw ConfigError("element <" + name_ + "> is missing required attribute '" +
                    std::string(key) + "'");
}

std::int64_t Node::attribute_int(std::string_view key,
                                 std::int64_t fallback) const {
  auto v = attribute(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("attribute '" + std::string(key) + "' of <" + name_ +
                      "> is not an integer: '" + *v + "'");
  }
}

double Node::attribute_double(std::string_view key, double fallback) const {
  auto v = attribute(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("attribute '" + std::string(key) + "' of <" + name_ +
                      "> is not a number: '" + *v + "'");
  }
}

bool Node::attribute_bool(std::string_view key, bool fallback) const {
  auto v = attribute(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw ConfigError("attribute '" + std::string(key) + "' of <" + name_ +
                    "> is not a boolean: '" + *v + "'");
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_)
    if (c.name() == name) out.push_back(&c);
  return out;
}

const Node* Node::child(std::string_view name) const noexcept {
  for (const auto& c : children_)
    if (c.name() == name) return &c;
  return nullptr;
}

const Node& Node::require_child(std::string_view name) const {
  if (const Node* c = child(name)) return *c;
  throw ConfigError("element <" + name_ + "> is missing required child <" +
                    std::string(name) + ">");
}

void Node::add_attribute(std::string key, std::string value) {
  attributes_.emplace_back(std::move(key), std::move(value));
}

Node& Node::add_child(Node child) {
  children_.push_back(std::move(child));
  return children_.back();
}

namespace {

void escape_into(std::string& out, std::string_view text, bool in_attribute) {
  for (char ch : text) {
    switch (ch) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': if (in_attribute) { out += "&quot;"; break; } [[fallthrough]];
      default: out += ch;
    }
  }
}

}  // namespace

std::string Node::to_xml(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attributes_) {
    out += " " + k + "=\"";
    escape_into(out, v, /*in_attribute=*/true);
    out += "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += " />\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) escape_into(out, text_, /*in_attribute=*/false);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c.to_xml(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Node parse_document() {
    skip_prolog();
    Node root = parse_element();
    skip_misc();
    if (!at_end())
      fail("unexpected content after the root element");
    return root;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const noexcept {
    return at_end() ? '\0' : text_[pos_];
  }

  [[nodiscard]] bool starts_with(std::string_view prefix) const noexcept {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  char advance() {
    const char ch = text_[pos_++];
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }

  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "XML parse error at line " << line_ << ", column " << column_ << ": "
       << what;
    throw ConfigError(os.str());
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  void skip_comment() {
    // precondition: at "<!--"
    advance_by(4);
    while (!at_end() && !starts_with("-->")) advance();
    if (at_end()) fail("unterminated comment");
    advance_by(3);
  }

  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts_with("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (starts_with("<?xml")) {
      while (!at_end() && !starts_with("?>")) advance();
      if (at_end()) fail("unterminated XML declaration");
      advance_by(2);
    }
    skip_misc();
    if (starts_with("<!DOCTYPE")) {
      // Skip to the matching '>' (no internal subset support).
      while (!at_end() && peek() != '>') advance();
      if (at_end()) fail("unterminated DOCTYPE");
      advance();
    }
    skip_misc();
  }

  [[nodiscard]] static bool is_name_start(char ch) noexcept {
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' || ch == ':';
  }
  [[nodiscard]] static bool is_name_char(char ch) noexcept {
    return is_name_start(ch) || std::isdigit(static_cast<unsigned char>(ch)) ||
           ch == '-' || ch == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string decode_entity() {
    // precondition: at '&'
    advance();
    std::string entity;
    while (!at_end() && peek() != ';' && entity.size() < 8) entity += advance();
    if (peek() != ';') fail("unterminated entity reference");
    advance();
    if (entity == "lt") return "<";
    if (entity == "gt") return ">";
    if (entity == "amp") return "&";
    if (entity == "quot") return "\"";
    if (entity == "apos") return "'";
    if (!entity.empty() && entity[0] == '#') {
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const long code = std::strtol(entity.c_str() + (hex ? 2 : 1), nullptr,
                                    hex ? 16 : 10);
      if (code <= 0 || code > 0x10FFFF) fail("invalid character reference");
      // Encode as UTF-8.
      std::string out;
      const auto c = static_cast<unsigned long>(code);
      if (c < 0x80) {
        out += static_cast<char>(c);
      } else if (c < 0x800) {
        out += static_cast<char>(0xC0 | (c >> 6));
        out += static_cast<char>(0x80 | (c & 0x3F));
      } else if (c < 0x10000) {
        out += static_cast<char>(0xE0 | (c >> 12));
        out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (c & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (c >> 18));
        out += static_cast<char>(0x80 | ((c >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((c >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (c & 0x3F));
      }
      return out;
    }
    fail("unknown entity '&" + entity + ";'");
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '&') {
        value += decode_entity();
      } else if (peek() == '<') {
        fail("'<' not allowed inside attribute value");
      } else {
        value += advance();
      }
    }
    if (at_end()) fail("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  Node parse_element() {
    if (peek() != '<') fail("expected '<'");
    advance();
    Node node(parse_name());
    // Attributes.
    for (;;) {
      skip_whitespace();
      if (starts_with("/>")) {
        advance_by(2);
        return node;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      std::string key = parse_name();
      skip_whitespace();
      if (peek() != '=') fail("expected '=' after attribute name '" + key + "'");
      advance();
      skip_whitespace();
      if (node.has_attribute(key))
        fail("duplicate attribute '" + key + "' on <" + node.name() + ">");
      node.add_attribute(std::move(key), parse_attribute_value());
    }
    // Content.
    std::string text;
    for (;;) {
      if (at_end()) fail("unterminated element <" + node.name() + ">");
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<![CDATA[")) {
        advance_by(9);
        while (!at_end() && !starts_with("]]>")) text += advance();
        if (at_end()) fail("unterminated CDATA section");
        advance_by(3);
      } else if (starts_with("</")) {
        advance_by(2);
        const std::string closing = parse_name();
        if (closing != node.name())
          fail("mismatched closing tag </" + closing + "> for <" +
               node.name() + ">");
        skip_whitespace();
        if (peek() != '>') fail("malformed closing tag");
        advance();
        break;
      } else if (peek() == '<') {
        node.add_child(parse_element());
      } else if (peek() == '&') {
        text += decode_entity();
      } else {
        text += advance();
      }
    }
    // Trim surrounding whitespace from text content.
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      text.clear();
    } else {
      const auto last = text.find_last_not_of(" \t\r\n");
      text = text.substr(first, last - first + 1);
    }
    node.set_text(std::move(text));
    return node;
  }
};

}  // namespace

Node parse(std::string_view document) {
  return Parser(document).parse_document();
}

Node parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open XML file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace dedicore::xml
