// Minimal XML parser and DOM for Damaris-style configuration files.
//
// Damaris (and ADIOS, which the paper cites as the inspiration) describe
// the simulation's variables, layouts, meshes and plugin pipeline in an
// external XML document.  This parser supports the subset such files use:
// elements, attributes, text content, comments, XML declarations, CDATA,
// and the five predefined entities.  It reports errors with line/column
// positions via ConfigError.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dedicore::xml {

/// One element in the parsed document tree.
class Node {
 public:
  Node() = default;
  explicit Node(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Concatenated text content directly under this element (whitespace
  /// trimmed at both ends).
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

  // -- attributes -----------------------------------------------------------
  [[nodiscard]] bool has_attribute(std::string_view key) const noexcept;
  /// Value or std::nullopt.
  [[nodiscard]] std::optional<std::string> attribute(std::string_view key) const;
  /// Value or `fallback`.
  [[nodiscard]] std::string attribute_or(std::string_view key,
                                         std::string_view fallback) const;
  /// Value or throws ConfigError naming the element and attribute.
  [[nodiscard]] const std::string& require_attribute(std::string_view key) const;
  /// Typed accessors; throw ConfigError on parse failure.
  [[nodiscard]] std::int64_t attribute_int(std::string_view key,
                                           std::int64_t fallback) const;
  [[nodiscard]] double attribute_double(std::string_view key,
                                        double fallback) const;
  [[nodiscard]] bool attribute_bool(std::string_view key, bool fallback) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const noexcept { return attributes_; }

  // -- children -------------------------------------------------------------
  [[nodiscard]] const std::vector<Node>& children() const noexcept { return children_; }
  /// All direct children with the given element name.
  [[nodiscard]] std::vector<const Node*> children_named(std::string_view name) const;
  /// First direct child with the name, or nullptr.
  [[nodiscard]] const Node* child(std::string_view name) const noexcept;
  /// First direct child with the name, or throws ConfigError.
  [[nodiscard]] const Node& require_child(std::string_view name) const;

  // -- construction (used by the parser and by tests building docs) ---------
  void set_name(std::string name) { name_ = std::move(name); }
  void set_text(std::string text) { text_ = std::move(text); }
  void add_attribute(std::string key, std::string value);
  Node& add_child(Node child);

  /// Serialize back to XML (2-space indentation); round-trip tested.
  [[nodiscard]] std::string to_xml(int indent = 0) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<Node> children_;
};

/// Parses a complete document and returns its root element.
/// Throws ConfigError with "line L, column C" context on malformed input.
Node parse(std::string_view document);

/// Reads the file and parses it; throws ConfigError if unreadable.
Node parse_file(const std::string& path);

}  // namespace dedicore::xml
