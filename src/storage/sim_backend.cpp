#include "storage/sim_backend.hpp"

namespace dedicore::storage {

Status SimBackend::create(const std::string& path, FileHandle* out,
                          int stripe_count) {
  DEDICORE_CHECK(out != nullptr, "SimBackend::create: null out");
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  const fsim::FileHandle handle = fs_.create(path, stripe_count);
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, handle);
  ++stats_.files_created;
  *out = FileHandle{id};
  return Status::ok();
}

Status SimBackend::open(const std::string& path, FileHandle* out) {
  DEDICORE_CHECK(out != nullptr, "SimBackend::open: null out");
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  auto handle = fs_.open(path);
  if (!handle)
    return Status::not_found("sim open: no such file '" + path + "'");
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, *handle);
  *out = FileHandle{id};
  return Status::ok();
}

Status SimBackend::resolve(FileHandle file, fsim::FileHandle* out) const {
  MutexLock lock(mutex_);
  auto it = open_.find(file.id);
  if (it == open_.end())
    return Status::failed_precondition(
        "sim: handle " + std::to_string(file.id) + " is closed or invalid");
  *out = it->second;
  return Status::ok();
}

Status SimBackend::write(FileHandle file, std::span<const std::byte> bytes,
                         double* seconds) {
  fsim::FileHandle handle;
  if (Status st = resolve(file, &handle); !st.is_ok()) return st;
  const double duration = fs_.write(handle, bytes);
  if (seconds != nullptr) *seconds = duration;
  MutexLock lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  stats_.write_seconds += duration;
  return Status::ok();
}

Status SimBackend::pwrite(FileHandle file, std::uint64_t offset,
                          std::span<const std::byte> bytes, double* seconds) {
  fsim::FileHandle handle;
  if (Status st = resolve(file, &handle); !st.is_ok()) return st;
  const double duration = fs_.pwrite(handle, offset, bytes);
  if (seconds != nullptr) *seconds = duration;
  MutexLock lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  stats_.write_seconds += duration;
  return Status::ok();
}

Status SimBackend::close(FileHandle file) {
  fsim::FileHandle handle;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(file.id);
    // Double close is an invariant violation, exactly like fsim's own
    // stale-handle check — the caller's handle bookkeeping is broken.
    DEDICORE_CHECK(it != open_.end(), "SimBackend: double close or stale file handle");
    handle = it->second;
    open_.erase(it);
  }
  fs_.close(handle);
  return Status::ok();
}

bool SimBackend::exists(const std::string& path) const { return fs_.exists(path); }

std::optional<std::vector<std::byte>> SimBackend::read_file(
    const std::string& path) const {
  return fs_.read_file(path);
}

std::uint64_t SimBackend::file_size(const std::string& path) const {
  return fs_.file_size(path);
}

std::vector<std::string> SimBackend::list_files() const { return fs_.list_files(); }

std::size_t SimBackend::file_count() const { return fs_.file_count(); }

StorageStats SimBackend::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace dedicore::storage
