// StorageBackend over a real POSIX filesystem — the missing half of the
// h5lite story: the same per-node aggregated and file-per-process images
// the simulator retains in memory, written to actual disk through
// open/pwrite/fsync/close, the way Damaris's default storage plugin emits
// per-node aggregated HDF5.
//
// All backend paths are '/'-separated and relative; they are materialized
// under a root directory chosen at construction (<storage path="...">).
// Parent directories are created on demand.  Handles are process-local fds
// plus an append cursor so write() keeps fsim's append semantics even with
// concurrent writers on distinct handles.  Thread-safe: the handle table
// and counters are mutex-guarded and each open file carries its own lock.
#pragma once

#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/backend.hpp"

namespace dedicore::storage {

class PosixBackend final : public StorageBackend {
 public:
  /// Creates `root` (and parents) if needed; throws ConfigError when the
  /// directory cannot be created or is not writable.
  explicit PosixBackend(std::filesystem::path root);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  [[nodiscard]] std::string_view name() const noexcept override { return "posix"; }

  Status create(const std::string& path, FileHandle* out,
                int stripe_count = 0) override;
  Status open(const std::string& path, FileHandle* out) override;
  Status write(FileHandle file, std::span<const std::byte> bytes,
               double* seconds = nullptr) override;
  Status pwrite(FileHandle file, std::uint64_t offset,
                std::span<const std::byte> bytes,
                double* seconds = nullptr) override;
  Status close(FileHandle file) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::size_t file_count() const override;
  [[nodiscard]] StorageStats stats() const override;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Number of handles currently open (tests: close ordering / fd leaks).
  [[nodiscard]] std::size_t open_handles() const;

 private:
  struct OpenFile;

  /// Validates a backend path and maps it under root; Status on empty,
  /// absolute, or '..'-escaping paths.
  Status materialize(const std::string& path, std::filesystem::path* out) const;
  Status do_pwrite(FileHandle file, std::uint64_t offset,
                   std::span<const std::byte> bytes, double* seconds,
                   bool append);

  std::filesystem::path root_;
  mutable std::mutex mutex_;  ///< handle table + counters
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<OpenFile>> open_;
  StorageStats stats_;
};

}  // namespace dedicore::storage
