// StorageBackend over a real POSIX filesystem — the missing half of the
// h5lite story: the same per-node aggregated and file-per-process images
// the simulator retains in memory, written to actual disk through
// open/pwrite/fsync/close, the way Damaris's default storage plugin emits
// per-node aggregated HDF5.
//
// All backend paths are '/'-separated and relative; they are materialized
// under a root directory chosen at construction (<storage path="...">).
// Parent directories are created on demand.  Handles are process-local fds
// plus an append cursor so write() keeps fsim's append semantics even with
// concurrent writers on distinct handles.  Thread-safe: the handle table
// and counters are mutex-guarded and each open file carries its own lock.
//
// Crash consistency.  create() never opens the final path: bytes land in a
// same-directory temp ("<name>.part-<handle id>"), and close() publishes
// with the classic durable sequence
//
//   fsync(temp)  ->  rename(temp, final)  ->  fsync(parent dir)
//
// so the final name either does not exist or names a complete, durable
// image — a crash (power loss, SIGKILL, a fault-injected
// posix.crash_on_close) at any point leaves at worst a torn *temp*, never
// a torn final.  The constructor runs a recovery scan that moves any
// leftover "*.part-*" file into "<root>/.quarantine/" (counted in
// StorageStats::files_quarantined), so after a restart list_files() and
// readers see only complete images.  open() on an existing final mutates
// it in place (collective shared-header rewrites are position-stable
// in-file updates, not republications) — its close() is fsync-only.
//
// Fault injection (when constructed with an injector): "posix.pwrite",
// "posix.fsync" and "posix.rename" fail the corresponding step with an
// injected EIO (transient — the write-behind queue retries them);
// "posix.crash_on_close" simulates dying mid-close: the fd is dropped with
// no fsync and no rename, leaving the torn temp for the next recovery
// scan.
#pragma once

#include <filesystem>
#include <memory>
#include <unordered_map>

#include "common/fault.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "storage/backend.hpp"

namespace dedicore::storage {

class PosixBackend final : public StorageBackend {
 public:
  /// Creates `root` (and parents) if needed; throws ConfigError when the
  /// directory cannot be created or is not writable.  Then runs the
  /// recovery scan: torn temps from a previous crashed run are moved to
  /// "<root>/.quarantine/" and counted.  `faults` (optional) enables the
  /// posix.* injection points; `fault_target` is the target id this
  /// backend probes them with (-1 = untargeted) — ShardedBackend passes
  /// the root index so a fault plan can fail one root of many.
  explicit PosixBackend(std::filesystem::path root,
                        std::shared_ptr<fault::FaultInjector> faults = nullptr,
                        int fault_target = -1);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  [[nodiscard]] std::string_view name() const noexcept override { return "posix"; }

  Status create(const std::string& path, FileHandle* out,
                int stripe_count = 0) override;
  Status open(const std::string& path, FileHandle* out) override;
  Status write(FileHandle file, std::span<const std::byte> bytes,
               double* seconds = nullptr) override;
  Status pwrite(FileHandle file, std::uint64_t offset,
                std::span<const std::byte> bytes,
                double* seconds = nullptr) override;
  Status close(FileHandle file) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::size_t file_count() const override;
  [[nodiscard]] StorageStats stats() const override;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Removes `path` if present; true when a file was actually deleted.
  /// Best-effort (no fsync of the parent): the caller's consistency story
  /// must not depend on the removal being durable — ShardedBackend uses
  /// this to clear *stale* manifest copies whose content is already
  /// superseded by a higher-generation manifest elsewhere.
  bool remove_file(const std::string& path);

  /// Number of handles currently open (tests: close ordering / fd leaks).
  [[nodiscard]] std::size_t open_handles() const;

  /// Closes every still-open handle WITHOUT fsync or rename — the handles
  /// were leaked, so their content is not trustworthy enough to publish;
  /// a leaked create's temp stays torn and is quarantined by the next
  /// startup's recovery scan.  Returns the number of handles reclaimed
  /// (also accumulated in StorageStats::handles_reclaimed).  The
  /// destructor calls this so leaked handles never leak fds.
  std::size_t reclaim_leaked_handles();

  /// Quarantine directory of this root ("<root>/.quarantine").
  [[nodiscard]] std::filesystem::path quarantine_dir() const {
    return root_ / kQuarantineDirName;
  }

  static constexpr std::string_view kQuarantineDirName = ".quarantine";

 private:
  struct OpenFile;

  /// Validates a backend path and maps it under root; Status on empty,
  /// absolute, or '..'-escaping paths.
  Status materialize(const std::string& path, std::filesystem::path* out) const;
  /// "posix <op> [root <root>] '<path>'" — every I/O error Status starts
  /// with this, so a multi-root failure is attributable from the message
  /// alone.
  std::string err_prefix(const char* op, const std::string& path) const;
  /// err_prefix + ": " + strerror(errno).
  std::string errno_text(const char* op, const std::string& path) const;
  Status fsync_parent_dir(const std::filesystem::path& final_full,
                          const std::string& path) const;
  Status do_pwrite(FileHandle file, std::uint64_t offset,
                   std::span<const std::byte> bytes, double* seconds,
                   bool append);
  /// Startup recovery: move "*.part-*" leftovers into .quarantine/.
  void recover_torn_files();

  std::filesystem::path root_;
  std::shared_ptr<fault::FaultInjector> faults_;
  int fault_target_ = -1;
  /// Handle table + counters.  Never held across actual I/O: every path
  /// resolves the handle under this lock, RELEASES it, and only then takes
  /// the per-file OpenFile::io_mutex ("posix.file") for the syscalls — the
  /// two classes never nest, so a slow disk cannot stall the handle table.
  mutable Mutex mutex_{"posix.handles"};
  std::uint64_t next_id_ DEDICORE_GUARDED_BY(mutex_) = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<OpenFile>> open_
      DEDICORE_GUARDED_BY(mutex_);
  StorageStats stats_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::storage
