// Four-layer sharded storage stack — the real-Lustre analogue of fsim's
// OSTs, on real disks.  One logical image written through the ordinary
// StorageBackend contract is
//
//   1. CHUNKED    into fixed-size stripes (`chunk_size` bytes; the last
//                 chunk may be short),
//   2. PLACED     across N roots by a deterministic `Placement` policy
//                 (round-robin or bytes-outstanding balancing; replicas of
//                 one chunk never share a root),
//   3. CHECKED    with a per-chunk CRC32C recorded in the manifest and
//                 verified on every read-back (`kDataLoss` on mismatch),
//   4. PERSISTED  through one `PosixBackend` per root — inheriting PR 8's
//                 crash-consistent temp -> fsync -> rename publication and
//                 per-root `posix.*` fault points (probed with the root
//                 index as the fault target).
//
// On disk an image `dir/img.h5l` becomes
//
//   <root[a]>/dir/img.h5l.chunk-0        (primary of chunk 0)
//   <root[b]>/dir/img.h5l.chunk-0        (replica, replication=2)
//   <root[c]>/dir/img.h5l.chunk-1        ...
//   <root[a]>/dir/img.h5l.manifest       (text; see below)
//
// The MANIFEST is the publication point, exactly like minidfs's MetaServer
// maps chunks to DataNodes: chunk files are invisible until the manifest
// names them, the manifest is written last through the same durable
// temp+fsync+rename path, and the logical namespace (exists / list_files /
// file_size) is defined by manifests alone.  Format (line-oriented text,
// one `chunk` line per stripe; crc in hex, roots in replica order):
//
//   dedicore-sharded-manifest v2
//   generation 3
//   size 2621440
//   chunk_size 1048576
//   replication 2
//   chunks 3
//   chunk 0 1048576 1c291ca3 0,1
//   chunk 1 1048576 e3069283 1,2
//   chunk 2 524288 8a9136aa 2,0
//
// `generation` is a per-image monotonic counter (seeded from whatever is
// on disk, so it survives restarts).  Overwriting an image can move its
// manifest onto different roots (balanced placement re-decides), and a
// degraded publish can leave an old copy behind on a root the new copies
// missed — so readers scan EVERY root and serve the highest generation,
// and publish_manifest best-effort deletes manifest copies from the
// roots the new generation does not occupy.  Either mechanism alone
// resolves an overwrite correctly; together a stale copy can neither
// shadow new data nor turn a successful overwrite into kDataLoss.
//
// Reads reassemble from the manifest, verifying each chunk's CRC; with
// replication >= 2 a missing or corrupt copy falls back to the next
// replica (a *degraded read*, counted), and only when every copy of some
// chunk is gone or corrupt does the read fail with kDataLoss.
//
// Write paths.  The synchronous path (write_image -> create/write/close)
// and the write-behind path share the same three-step chunk API:
// `plan_image` (chunking + placement + CRCs, decided atomically at plan
// time so layouts are deterministic regardless of drain order), then one
// `write_chunk` per stripe (independent jobs — roots drain in parallel),
// then `publish_manifest` once every chunk landed.
#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "storage/backend.hpp"
#include "storage/placement.hpp"
#include "storage/posix_backend.hpp"

namespace dedicore::storage {

struct ShardedOptions {
  std::uint64_t chunk_size = 1 << 20;  ///< stripe size in bytes
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  std::uint64_t placement_seed = 0;
  int replication = 1;  ///< copies per chunk, in [1, root count]
};

/// One image's frozen layout: chunk sizes, CRCs, and chunk -> root map.
/// Produced by plan_image, consumed by write_chunk/publish_manifest (and
/// by the manifest parser on the read side).
struct ChunkPlan {
  std::string path;
  /// Monotonic per-image overwrite counter; readers pick the manifest
  /// copy with the highest generation (see the header comment).
  std::uint64_t generation = 1;
  std::uint64_t total_bytes = 0;
  std::uint64_t chunk_size = 0;
  int replication = 1;
  std::vector<std::uint64_t> sizes;         ///< per-chunk byte counts
  std::vector<std::uint32_t> crcs;          ///< per-chunk CRC32C
  std::vector<ChunkPlacement> placements;   ///< per-chunk root indices

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return sizes.size();
  }
  /// Byte offset of chunk `i` within the image.
  [[nodiscard]] std::uint64_t offset_of(std::size_t i) const noexcept {
    return chunk_size * static_cast<std::uint64_t>(i);
  }
};

/// Sharded-layer counters beyond the logical StorageStats (exported in the
/// stats_json snapshot; replica writes are counted individually).
struct ShardedCounters {
  std::uint64_t chunks_written = 0;         ///< chunk-replica files landed
  std::uint64_t degraded_chunk_writes = 0;  ///< chunks that lost >=1 replica
  std::uint64_t manifests_published = 0;
  /// Publishes where some (not all) manifest copies failed to land — the
  /// image is visible but its manifest is under-replicated.
  std::uint64_t degraded_manifest_writes = 0;
  std::uint64_t corrupt_chunks_detected = 0;///< CRC/size mismatches on read
  std::uint64_t degraded_reads = 0;         ///< reads served past a bad copy
};

class ShardedBackend final : public StorageBackend {
 public:
  /// Creates every root (ConfigError if any cannot be created / written,
  /// or if two roots resolve to the same directory).  Each root runs the
  /// PosixBackend recovery scan.  `faults` is shared by all roots; root
  /// `i` probes posix.* points with target `i`, so an XML fault plan can
  /// fail exactly one root of many.
  ShardedBackend(std::vector<std::filesystem::path> roots,
                 ShardedOptions options,
                 std::shared_ptr<fault::FaultInjector> faults = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sharded";
  }

  // -- StorageBackend contract (staging handles; close() publishes) -------
  Status create(const std::string& path, FileHandle* out,
                int stripe_count = 0) override;
  Status open(const std::string& path, FileHandle* out) override;
  Status write(FileHandle file, std::span<const std::byte> bytes,
               double* seconds = nullptr) override;
  Status pwrite(FileHandle file, std::uint64_t offset,
                std::span<const std::byte> bytes,
                double* seconds = nullptr) override;
  Status close(FileHandle file) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::size_t file_count() const override;
  /// Logical stats: one files_created per image, bytes_written of image
  /// bytes (not replica bytes) — so the conformance counters match the
  /// sim/posix backends for the same workload.  Per-root physical stats:
  /// root_stats().
  [[nodiscard]] StorageStats stats() const override;

  // -- chunk-granular write API (sync close() and WriteBehind share it) ---
  /// Freezes the layout of one image: split into chunks, CRC each, place
  /// across roots.  Placement state (balanced bytes-outstanding) advances
  /// here, atomically per image, so twin runs that plan the same sequence
  /// get identical layouts no matter how drains interleave later.
  [[nodiscard]] std::shared_ptr<ChunkPlan> plan_image(
      const std::string& path, std::span<const std::byte> image);
  /// Writes chunk `index` (all replicas) per the plan.  Ok when at least
  /// one replica landed (fewer than planned = degraded, logged + counted);
  /// kIoError only when every replica failed — transient, so WriteBehind
  /// retries it.  `chunk` must be exactly the planned slice.
  Status write_chunk(const ChunkPlan& plan, std::size_t index,
                     std::span<const std::byte> chunk,
                     double* seconds = nullptr);
  /// Publishes the manifest (the image becomes visible); call only after
  /// every chunk landed.  Replicated onto `replication` distinct roots.
  Status publish_manifest(const ChunkPlan& plan);

  // -- verified read ------------------------------------------------------
  /// Reassembles `path`, verifying every chunk CRC.  kNotFound when no
  /// manifest exists; kDataLoss when any chunk is unrecoverable (all
  /// copies missing, truncated, or checksum-mismatched).  `*degraded`
  /// (when non-null) reports whether any chunk was served by falling past
  /// a missing/corrupt copy.
  Status read_image(const std::string& path, std::vector<std::byte>* out,
                    bool* degraded = nullptr) const;

  // -- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t root_count() const noexcept {
    return roots_.size();
  }
  [[nodiscard]] PosixBackend& root_backend(std::size_t i) {
    return *roots_.at(i);
  }
  [[nodiscard]] const PosixBackend& root_backend(std::size_t i) const {
    return *roots_.at(i);
  }
  /// Physical per-root stats (chunk + manifest files, replica bytes).
  [[nodiscard]] std::vector<StorageStats> root_stats() const;
  [[nodiscard]] ShardedCounters counters() const;
  [[nodiscard]] const ShardedOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const Placement& placement() const noexcept {
    return *placement_;
  }
  [[nodiscard]] std::size_t open_handles() const;
  /// JSON snapshot of the whole stack: aggregate logical stats, the
  /// sharded counters, and one object per root with its physical stats —
  /// the per-root observability surface the ROADMAP's metrics item wants.
  [[nodiscard]] std::string stats_json() const;

  static constexpr std::string_view kManifestSuffix = ".manifest";
  static constexpr std::string_view kChunkInfix = ".chunk-";

 private:
  struct OpenImage;

  /// Parses `path`'s manifest: scans EVERY root and returns the copy with
  /// the highest generation, so a stale copy left behind by an overwrite
  /// (placement moved the manifest roots, or a degraded publish missed a
  /// root) can never shadow newer data.  kNotFound when none exists
  /// anywhere; kDataLoss when every copy is malformed.
  Status load_manifest(const std::string& path, ChunkPlan* out) const;
  /// Roots that receive the manifest copies for this plan.
  [[nodiscard]] std::vector<int> manifest_roots(const ChunkPlan& plan) const;
  /// Shared staging step behind write()/pwrite(): copies `bytes` into the
  /// handle's in-memory buffer at `offset` (or at EOF when `append`),
  /// growing it as needed.  The caller has already validated `offset`.
  Status stage(FileHandle handle, bool append, std::uint64_t offset,
               std::span<const std::byte> bytes, double* seconds);
  /// Next generation for `path`: one past the max of what this process
  /// has planned for the path and what is on disk.  The disk scan runs
  /// only for paths this process has not planned yet (restart / external
  /// overwrite); afterwards the in-memory counter is authoritative, so
  /// back-to-back overwrites get distinct generations even while earlier
  /// publishes are still draining in the write-behind queue.
  [[nodiscard]] std::uint64_t next_generation(const std::string& path);

  std::vector<std::unique_ptr<PosixBackend>> roots_;
  ShardedOptions options_;
  std::unique_ptr<Placement> placement_;

  /// Handle table + logical stats + counters.  stats() holds it across
  /// the per-root stats() calls, so the order sharded.state ->
  /// posix.handles is part of the storage hierarchy (and the staging
  /// handle's sharded.image lock sits above both: close() drains chunks
  /// while holding it).
  mutable Mutex mutex_{"sharded.state"};
  std::uint64_t next_id_ DEDICORE_GUARDED_BY(mutex_) = 1;
  /// Highest generation planned per path in this process (see
  /// next_generation).
  std::unordered_map<std::string, std::uint64_t> generations_
      DEDICORE_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::shared_ptr<OpenImage>> open_
      DEDICORE_GUARDED_BY(mutex_);
  StorageStats stats_ DEDICORE_GUARDED_BY(mutex_);
  /// Read-side counters mutate in const reads.
  mutable ShardedCounters counters_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::storage
