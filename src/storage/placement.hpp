// Placement layer of the sharded storage stack: decides, per image, which
// root each chunk (and each replica of each chunk) lands on.
//
// Two policies, both deterministic for a given (seed, sequence of
// place() calls):
//
//   * kRoundRobin — chunk i of an image starts at hash(path, seed) and
//     walks the roots cyclically.  Stateless across images: twin runs that
//     write the same paths produce byte-identical layouts regardless of
//     write order.  The hash start spreads *first* chunks across roots so
//     many small images do not all hammer root 0.
//
//   * kBalanced — every chunk goes to the root with the fewest bytes
//     outstanding (cumulative bytes this Placement instance has assigned),
//     ties broken by lowest root index.  All chunks of an image are placed
//     atomically under one lock, so concurrent placements interleave at
//     image granularity and the per-image layout is a pure function of the
//     byte counters at placement time.  This is the bytes-outstanding
//     balancing ROADMAP asks for: a root that received a huge image stops
//     attracting chunks until the others catch up.
//
// Replication: replica k of a chunk is placed on the k-th *distinct* next
// root after the primary (round-robin) or the k-th least-loaded remaining
// root (balanced), so replicas of one chunk never share a root — the
// property degraded reads rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace dedicore::storage {

enum class PlacementPolicy { kRoundRobin, kBalanced };

/// Parsed from <storage placement="round_robin|balanced">; throws
/// ConfigError on anything else.
PlacementPolicy placement_policy_from_name(const std::string& name);
const char* placement_policy_name(PlacementPolicy policy) noexcept;

/// Per-chunk placement decision: `roots[0]` is the primary copy,
/// `roots[1..]` the replicas, all distinct root indices.
struct ChunkPlacement {
  std::vector<int> roots;
};

class Placement {
 public:
  /// `root_count` >= 1; `replication` in [1, root_count].
  Placement(PlacementPolicy policy, int root_count, int replication,
            std::uint64_t seed);

  /// Places all chunks of one image atomically.  `chunk_sizes` are the
  /// post-split chunk byte counts (the last chunk may be short).
  [[nodiscard]] std::vector<ChunkPlacement> place(
      const std::string& path, const std::vector<std::uint64_t>& chunk_sizes);

  /// Cumulative bytes assigned per root (replicas included) — the balanced
  /// policy's state, exported for tests and the stats snapshot.
  [[nodiscard]] std::vector<std::uint64_t> assigned_bytes() const;

  [[nodiscard]] PlacementPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] int root_count() const noexcept { return root_count_; }
  [[nodiscard]] int replication() const noexcept { return replication_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  const PlacementPolicy policy_;
  const int root_count_;
  const int replication_;
  const std::uint64_t seed_;
  mutable Mutex mutex_{"placement.state"};
  /// Bytes per root, replicas included.
  std::vector<std::uint64_t> assigned_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::storage
