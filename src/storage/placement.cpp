#include "storage/placement.hpp"

#include <algorithm>
#include <numeric>

#include "common/status.hpp"

namespace dedicore::storage {

namespace {

/// FNV-1a over (seed, path) — stable across runs and platforms, unlike
/// std::hash, so "deterministic layout under a seed" survives a rebuild.
std::uint64_t stable_hash(std::uint64_t seed, const std::string& path) noexcept {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : path) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PlacementPolicy placement_policy_from_name(const std::string& name) {
  if (name == "round_robin") return PlacementPolicy::kRoundRobin;
  if (name == "balanced") return PlacementPolicy::kBalanced;
  throw ConfigError("storage placement must be 'round_robin' or 'balanced', "
                    "got '" + name + "'");
}

const char* placement_policy_name(PlacementPolicy policy) noexcept {
  return policy == PlacementPolicy::kRoundRobin ? "round_robin" : "balanced";
}

Placement::Placement(PlacementPolicy policy, int root_count, int replication,
                     std::uint64_t seed)
    : policy_(policy),
      root_count_(root_count),
      replication_(replication),
      seed_(seed),
      assigned_(static_cast<std::size_t>(root_count), 0) {
  DEDICORE_CHECK(root_count_ >= 1, "Placement: root_count must be >= 1");
  DEDICORE_CHECK(replication_ >= 1 && replication_ <= root_count_,
                 "Placement: replication must be in [1, root_count]");
}

std::vector<ChunkPlacement> Placement::place(
    const std::string& path, const std::vector<std::uint64_t>& chunk_sizes) {
  std::vector<ChunkPlacement> out(chunk_sizes.size());
  MutexLock lock(mutex_);
  if (policy_ == PlacementPolicy::kRoundRobin) {
    const std::uint64_t start = stable_hash(seed_, path);
    for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
      out[i].roots.reserve(static_cast<std::size_t>(replication_));
      for (int k = 0; k < replication_; ++k) {
        // Offsets i, i+1, ... are distinct mod root_count for k <
        // replication <= root_count, so replicas never share a root.
        const int root = static_cast<int>(
            (start + i + static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(root_count_));
        out[i].roots.push_back(root);
        assigned_[static_cast<std::size_t>(root)] += chunk_sizes[i];
      }
    }
    return out;
  }
  // Balanced: per chunk, pick the `replication` least-loaded distinct
  // roots (ties to the lowest index), then charge the chunk's bytes to
  // each — so the next chunk sees the updated load.
  std::vector<int> order(static_cast<std::size_t>(root_count_));
  // Local alias: the comparator lambda is a separate function to the
  // thread-safety analysis, so it reads through this reference (bound
  // while mutex_ is held, and the lock stays held for the whole loop).
  std::vector<std::uint64_t>& loads = assigned_;
  for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&loads](int a, int b) {
      return loads[static_cast<std::size_t>(a)] <
             loads[static_cast<std::size_t>(b)];
    });
    out[i].roots.assign(order.begin(),
                        order.begin() + static_cast<std::size_t>(replication_));
    for (const int root : out[i].roots)
      loads[static_cast<std::size_t>(root)] += chunk_sizes[i];
  }
  return out;
}

std::vector<std::uint64_t> Placement::assigned_bytes() const {
  MutexLock lock(mutex_);
  return assigned_;
}

}  // namespace dedicore::storage
