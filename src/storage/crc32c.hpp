// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the integrity layer stores alongside every chunk.  Chosen over
// plain CRC32 for its better burst-error detection and because it is the
// de-facto storage checksum (iSCSI, ext4 metadata, LevelDB/RocksDB block
// trailers), so on-disk artifacts stay recognizable to external tooling.
//
// Software table implementation (slice-by-one): ~1 byte per cycle-ish,
// plenty for the chunk sizes the sharded backend moves — checksumming is
// never the bottleneck next to fsync.  The incremental form lets callers
// checksum scatter/gather data without concatenating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dedicore::storage {

/// CRC of the empty string is 0; crc32c(crc32c(0, a), b) == crc32c(0, a+b).
std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::byte> bytes) noexcept;

inline std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept {
  return crc32c_extend(0, bytes);
}

}  // namespace dedicore::storage
