#include "storage/backend.hpp"

#include <string_view>

namespace dedicore::storage {

Status validate_backend_path(const std::string& path) {
  if (path.empty() || path.front() == '/')
    return Status::invalid_argument(
        "storage: path must be non-empty and relative, got '" + path + "'");
  std::string_view rest(path);
  while (!rest.empty()) {
    const auto slash = rest.find('/');
    const std::string_view part = rest.substr(0, slash);
    if (part == "..")
      return Status::invalid_argument("storage: path '" + path +
                                      "' escapes the storage root");
    if (slash == std::string_view::npos) break;
    rest.remove_prefix(slash + 1);
  }
  return Status::ok();
}

Status write_image(StorageBackend& backend, const std::string& path,
                   std::span<const std::byte> image, int stripe_count,
                   double* seconds) {
  FileHandle file;
  if (Status st = backend.create(path, &file, stripe_count); !st.is_ok())
    return st;
  const Status wrote = backend.write(file, image, seconds);
  const Status closed = backend.close(file);
  if (!wrote.is_ok()) return wrote;
  return closed;
}

}  // namespace dedicore::storage
