#include "storage/crc32c.hpp"

#include <array>

namespace dedicore::storage {

namespace {

// Table for the reflected Castagnoli polynomial, generated once at first
// use (constant-initialized would also work but constexpr loops of 256*8
// iterations cost compile time for no runtime benefit).
const std::array<std::uint32_t, 256>& table() noexcept {
  static const std::array<std::uint32_t, 256> t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      out[i] = c;
    }
    return out;
  }();
  return t;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::byte> bytes) noexcept {
  const auto& t = table();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::byte b : bytes)
    c = t[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dedicore::storage
