// StorageBackend over the filesystem simulator — the seed's in-memory
// persistence path, unchanged semantics: modelled write durations, MDS
// serialization, striping, and content retention all come from
// fsim::FileSystem.  The adapter adds only the backend contract the
// simulator does not enforce itself: per-handle open/closed tracking so a
// write after close is a Status error and a double close is a crash, and
// adapter-local counters so stats() describes exactly the traffic routed
// through this backend (the underlying FileSystem may be shared by other
// writers in the same experiment).
#pragma once

#include <unordered_map>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "fsim/filesystem.hpp"
#include "storage/backend.hpp"

namespace dedicore::storage {

class SimBackend final : public StorageBackend {
 public:
  /// Non-owning: `fs` must outlive the backend (it is typically the
  /// experiment-wide simulator shared with baseline writers and stats).
  explicit SimBackend(fsim::FileSystem& fs) : fs_(fs) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "sim"; }

  Status create(const std::string& path, FileHandle* out,
                int stripe_count = 0) override;
  Status open(const std::string& path, FileHandle* out) override;
  Status write(FileHandle file, std::span<const std::byte> bytes,
               double* seconds = nullptr) override;
  Status pwrite(FileHandle file, std::uint64_t offset,
                std::span<const std::byte> bytes,
                double* seconds = nullptr) override;
  Status close(FileHandle file) override;

  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list_files() const override;
  [[nodiscard]] std::size_t file_count() const override;
  [[nodiscard]] StorageStats stats() const override;

  /// The wrapped simulator (experiment-wide stats, config).
  [[nodiscard]] fsim::FileSystem& filesystem() noexcept { return fs_; }

 private:
  /// Resolves a live handle to the simulator's handle; Status on a closed
  /// or foreign id (write-after-close must not reach fsim's fatal check).
  Status resolve(FileHandle file, fsim::FileHandle* out) const;

  fsim::FileSystem& fs_;
  mutable Mutex mutex_{"sim_backend.state"};
  std::uint64_t next_id_ DEDICORE_GUARDED_BY(mutex_) = 1;
  /// Live handles.
  std::unordered_map<std::uint64_t, fsim::FileHandle> open_
      DEDICORE_GUARDED_BY(mutex_);
  StorageStats stats_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::storage
