// Async write-behind queue in front of a StorageBackend.
//
// The dedicated core's storage plugin must never couple the *iteration
// completion path* (which releases segment space / flow credit back to
// clients) to disk latency.  With write-behind, the plugin enqueues the
// finalized h5lite image and returns; server workers drain the queue and
// perform the real create/write/close.  The queue is bounded by a byte
// budget: when a slow disk lets pending images accumulate past the budget,
// enqueue() blocks — the pipeline stalls, iterations stop completing,
// blocks stay resident, and the existing credit/segment backpressure
// reaches the clients.  A slow disk therefore backs up into the same
// flow-control machinery as a slow plugin, instead of silently growing an
// unbounded buffer or stalling clients on every write.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "storage/backend.hpp"

namespace dedicore::storage {

struct WriteBehindStats {
  std::uint64_t jobs_enqueued = 0;
  std::uint64_t jobs_written = 0;
  /// Jobs whose final verdict was failure (logged + counted + dropped).
  std::uint64_t jobs_failed = 0;
  /// Poison jobs: transient (kIoError) failures that survived the whole
  /// retry budget and were dropped so they cannot wedge the drain.  Every
  /// quarantined job is also counted in jobs_failed.
  std::uint64_t jobs_quarantined = 0;
  /// Individual retry attempts across all jobs (first attempts excluded).
  std::uint64_t retries = 0;
  std::uint64_t bytes_enqueued = 0;
  std::uint64_t bytes_written = 0;
  double enqueue_block_seconds = 0.0;  ///< producer stalls on a full budget
  /// Worker time inside backend calls (including retry backoff sleeps).
  double drain_seconds = 0.0;
  std::uint64_t max_pending_bytes = 0; ///< high-water mark of the queue
};

class ShardedBackend;  // sharded_backend.hpp; enables chunk-granular jobs

class WriteBehind {
 public:
  struct Job {
    Job() = default;
    /// Producer form: an image to persist (optionally with a completion
    /// hook).  Kept as a constructor so the `perform`/`charge_bytes`
    /// internals below stay invisible to producer call sites.
    Job(std::string path_in, int stripes, std::vector<std::byte> image_in,
        std::function<void(const Status&)> on_complete_in = nullptr)
        : path(std::move(path_in)),
          stripe_count(stripes),
          image(std::move(image_in)),
          on_complete(std::move(on_complete_in)) {}

    std::string path;
    int stripe_count = 0;
    std::vector<std::byte> image;
    /// Invoked once with the backend's verdict after the write attempt
    /// (any drainer thread; callbacks across the queue are serialized, so
    /// shared accounting inside needs no extra locking against other
    /// callbacks).  Producers use it to count durability at *drain* time
    /// — an enqueue is a promise, not a persisted file.
    std::function<void(const Status&)> on_complete;
    /// Internal (chunk-granular splitting): when set, the drain runs this
    /// instead of write_image and `charge_bytes` is the job's budget
    /// share.  Producers leave both empty.
    std::function<Status(double*)> perform;
    std::uint64_t charge_bytes = 0;

    [[nodiscard]] std::uint64_t bytes() const noexcept {
      return perform ? charge_bytes : image.size();
    }
  };

  /// `budget_bytes` bounds the pending (not yet drained) image bytes; a
  /// single job larger than the budget is still admitted alone, so the
  /// queue can never deadlock on an oversized image.  `retries` is the
  /// total attempt budget per job for *transient* (kIoError) backend
  /// failures: between attempts the drainer backs off exponentially (1 ms
  /// doubling, capped at 50 ms), and a job that exhausts the budget is
  /// quarantined as poison — dropped with its callback run, counted in
  /// WriteBehindStats::jobs_quarantined — instead of wedging the drain or
  /// the shutdown path.  `faults` (optional) enables the
  /// write_behind.* injection points.
  WriteBehind(StorageBackend& backend, std::uint64_t budget_bytes,
              int retries = 3,
              std::shared_ptr<fault::FaultInjector> faults = nullptr);
  ~WriteBehind();

  WriteBehind(const WriteBehind&) = delete;
  WriteBehind& operator=(const WriteBehind&) = delete;

  /// Queues the job.  While the byte budget is exhausted the caller is
  /// held up (backpressure) — but never parked helplessly: if queued work
  /// exists, the producer drains it itself (it may be the only thread
  /// able to reach a drain site, e.g. a plugin firing repeatedly under
  /// the server's pipeline mutex), and it only sleeps when every pending
  /// byte is in flight on another drainer.  Deadlock-free by
  /// construction.  Fatal after close().
  ///
  /// Sharded backends make jobs CHUNK-GRANULAR: an image job is split at
  /// enqueue time into one queue entry per chunk (layout frozen here via
  /// plan_image, so placement is deterministic in enqueue order no matter
  /// how drains interleave), each owning its own slice of the image so
  /// memory is freed chunk-by-chunk as the queue drains (residency tracks
  /// the byte budget), concurrent drainers then write chunks of the
  /// same image to different roots in parallel, and the drainer that
  /// completes the image's last chunk publishes the manifest and fires
  /// the producer's on_complete once with the aggregate verdict.  Chunk
  /// jobs retry/quarantine individually; a quarantined chunk withholds
  /// the manifest, so a partially-failed image is never visible.
  void enqueue(Job job);

  /// Drains up to `max_jobs` pending jobs on the calling thread (server
  /// workers call this opportunistically after completing an iteration's
  /// pipeline).  Returns the number of jobs written.  Concurrent callers
  /// drain disjoint jobs.
  std::size_t drain_some(std::size_t max_jobs);

  /// Non-blocking single-job drain: pops and writes one pending job, or
  /// returns false immediately when the queue is empty.  This is the
  /// idle-worker hook — a pooled server worker parked in next_event()
  /// with nothing to consume or steal calls it instead of sleeping, so
  /// disk drain overlaps event waits.  Never waits for in-flight jobs.
  bool try_drain_one();

  /// Drains until the queue is empty *and no job is in flight on another
  /// drainer* — when it returns, every enqueued image has been durably
  /// attempted and its on_complete has run (shutdown path; also wakes
  /// producers).
  ///
  /// Audit notes (same discipline as the BoundedQueue condvar audits):
  ///  * No lost wakeup: idle_ is waited on under mutex_, and both state
  ///    transitions its predicate watches are made AND notified while
  ///    mutex_ is held — enqueue() pushes onto queue_ then notifies, and
  ///    write_out() decrements in_flight_ then notifies.  A waiter
  ///    therefore either observes the new state at the predicate check or
  ///    is woken by the notification; there is no window where the state
  ///    changes between the check and the wait registration.
  ///  * No double count / double drain: a job moves queue_ -> in_flight_
  ///    exactly once, atomically under mutex_ (pop()), and its budget
  ///    share and stats are released exactly once, in write_out()'s
  ///    accounting block.  drain_all never touches a job another drainer
  ///    popped — it waits for in_flight_ == 0 instead, so no job's
  ///    on_complete can run twice.
  ///  * Termination: retries are bounded (poison jobs are quarantined
  ///    after the retry budget, never re-enqueued), so every in-flight
  ///    job finishes in bounded time and in_flight_ is monotonically
  ///    drained once producers stop; a producer that slips a new job in
  ///    meanwhile re-arms the pop loop instead of being waited on forever.
  void drain_all();

  /// Rejects further enqueues and drains what is left.  Idempotent;
  /// called by the destructor.
  void close();

  [[nodiscard]] std::uint64_t pending_bytes() const;
  [[nodiscard]] std::size_t pending_jobs() const;
  [[nodiscard]] WriteBehindStats stats() const;
  [[nodiscard]] StorageBackend& backend() noexcept { return backend_; }

 private:
  /// Pops one job; false when the queue is empty.
  bool pop(Job* out);
  void write_out(Job job);
  /// Admission + bookkeeping shared by whole-image and chunk jobs.
  void enqueue_one(Job job);
  /// Splits an image job into per-chunk jobs + a manifest-publishing
  /// completion ticket (sharded backends only).
  void enqueue_sharded(Job job);

  StorageBackend& backend_;
  ShardedBackend* sharded_ = nullptr;  ///< non-null when backend_ is sharded
  const std::uint64_t budget_bytes_;
  const int retries_;  ///< total attempts per job on transient failures
  std::shared_ptr<fault::FaultInjector> faults_;

  /// Queue + budget + counters.  Never held across a backend call or an
  /// on_complete callback — write_out releases it before both.
  mutable Mutex mutex_{"write_behind.state"};
  CondVar space_;   ///< producers waiting for budget
  CondVar idle_;    ///< drain_all waiting for in-flight jobs
  /// Serializes on_complete invocations (not the backend writes), so
  /// producer-side accounting never races another drainer's callback.
  /// Held while the sharded completion ticket publishes its manifest, so
  /// write_behind.callback sits ABOVE sharded.state / posix.* in the
  /// hierarchy; it never nests with write_behind.state in either order.
  Mutex callback_mutex_{"write_behind.callback"};
  std::deque<Job> queue_ DEDICORE_GUARDED_BY(mutex_);
  /// Queued + in-flight drain bytes.
  std::uint64_t pending_bytes_ DEDICORE_GUARDED_BY(mutex_) = 0;
  /// Jobs popped but not yet written out.
  int in_flight_ DEDICORE_GUARDED_BY(mutex_) = 0;
  bool closed_ DEDICORE_GUARDED_BY(mutex_) = false;
  WriteBehindStats stats_ DEDICORE_GUARDED_BY(mutex_);
};

}  // namespace dedicore::storage
