#include "storage/write_behind.hpp"

#include <chrono>
#include <thread>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "storage/sharded_backend.hpp"

namespace dedicore::storage {

WriteBehind::WriteBehind(StorageBackend& backend, std::uint64_t budget_bytes,
                         int retries,
                         std::shared_ptr<fault::FaultInjector> faults)
    : backend_(backend),
      budget_bytes_(budget_bytes),
      retries_(retries),
      faults_(std::move(faults)) {
  DEDICORE_CHECK(budget_bytes_ > 0, "WriteBehind: budget must be positive");
  DEDICORE_CHECK(retries_ >= 1, "WriteBehind: retry budget must be >= 1");
  // A sharded backend turns image jobs into chunk jobs (see enqueue), so
  // concurrent drainers spread one image's chunks across roots in
  // parallel instead of serializing the whole image on one thread.
  sharded_ = dynamic_cast<ShardedBackend*>(&backend_);
}

WriteBehind::~WriteBehind() { close(); }

void WriteBehind::enqueue(Job job) {
  // Injected producer stall (fault plans only): models a plugin that is
  // slow to reach the enqueue, so drain/stall interleavings can be forced
  // deterministically in tests.
  if (faults_ != nullptr) {
    if (auto fired = faults_->fire("write_behind.enqueue_stall"))
      std::this_thread::sleep_for(std::chrono::microseconds(fired->magnitude));
  }
  if (sharded_ != nullptr && !job.perform) {
    enqueue_sharded(std::move(job));
    return;
  }
  enqueue_one(std::move(job));
}

void WriteBehind::enqueue_sharded(Job job) {
  // Freeze the layout now — placement advances in enqueue order, which is
  // the producers' program order, so twin runs plan identical layouts no
  // matter how the chunks later drain.
  auto plan = sharded_->plan_image(job.path, job.image);
  ShardedBackend* sharded = sharded_;
  if (plan->chunk_count() == 0) {
    // Empty image: no stripes, just the (visible-making) manifest.
    Job only;
    only.path = job.path;
    only.perform = [sharded, plan](double* seconds) {
      if (seconds != nullptr) *seconds = 0.0;
      return sharded->publish_manifest(*plan);
    };
    only.on_complete = std::move(job.on_complete);
    enqueue_one(std::move(only));
    return;
  }
  // Slice the image into per-chunk buffers: each chunk job owns exactly
  // its stripe, so its memory is returned the moment it drains and
  // resident bytes track pending_bytes_.  (Sharing one full-image buffer
  // across the chunk jobs would pin the whole image until its LAST chunk
  // drains while the budget shares release per chunk — residency could
  // overshoot budget_bytes by nearly a full image per in-flight image.)
  std::vector<std::shared_ptr<const std::vector<std::byte>>> slices;
  slices.reserve(plan->chunk_count());
  for (std::size_t i = 0; i < plan->chunk_count(); ++i) {
    const std::byte* base = job.image.data() + plan->offset_of(i);
    slices.push_back(std::make_shared<const std::vector<std::byte>>(
        base, base + plan->sizes[i]));
  }
  // Free the full image before admission — enqueue_one below can block on
  // the budget (or drain jobs inline), and the image has been copied out.
  job.image = std::vector<std::byte>();
  // One queue entry per chunk, plus a shared countdown ticket.  The
  // drainer that completes the last chunk publishes the manifest (still
  // on a drainer thread, under the serialized-callback lock) and fires
  // the producer's on_complete exactly once with the aggregate verdict.
  // Any chunk failure — including a quarantined poison chunk — withholds
  // the manifest, so readers never see a partially-written image.
  struct Ticket {
    std::size_t remaining = 0;
    Status first_error;
    std::function<void(const Status&)> on_complete;
  };
  auto ticket = std::make_shared<Ticket>();
  ticket->remaining = plan->chunk_count();
  ticket->on_complete = std::move(job.on_complete);
  for (std::size_t i = 0; i < plan->chunk_count(); ++i) {
    Job chunk;
    chunk.path = job.path + "#chunk-" + std::to_string(i);
    chunk.charge_bytes = plan->sizes[i];
    chunk.perform = [sharded, plan, slice = slices[i], i](double* seconds) {
      return sharded->write_chunk(*plan, i,
                                  std::span<const std::byte>(*slice),
                                  seconds);
    };
    chunk.on_complete = [sharded, plan, ticket](const Status& st) {
      // Serialized by callback_mutex_: the countdown and first_error need
      // no extra synchronization.
      if (!st.is_ok() && ticket->first_error.is_ok())
        ticket->first_error = st;
      if (--ticket->remaining != 0) return;
      Status verdict = ticket->first_error;
      if (verdict.is_ok())
        verdict = sharded->publish_manifest(*plan);
      else
        DEDICORE_LOG(kError)
            << "write-behind: withholding manifest for '" << plan->path
            << "' after a chunk failure: " << verdict.to_string();
      if (ticket->on_complete) ticket->on_complete(verdict);
    };
    enqueue_one(std::move(chunk));
  }
}

void WriteBehind::enqueue_one(Job job) {
  Stopwatch blocked;
  for (;;) {
    UniqueLock lock(mutex_);
    DEDICORE_CHECK(!closed_, "WriteBehind: enqueue after close");
    // Admit when the budget has room — or when nothing is pending at all,
    // so an oversized job is let in alone and can never wait on itself.
    if (pending_bytes_ + job.bytes() <= budget_bytes_ ||
        pending_bytes_ == 0) {
      stats_.enqueue_block_seconds += blocked.elapsed_seconds();
      pending_bytes_ += job.bytes();
      stats_.max_pending_bytes =
          std::max(stats_.max_pending_bytes, pending_bytes_);
      ++stats_.jobs_enqueued;
      stats_.bytes_enqueued += job.bytes();
      queue_.push_back(std::move(job));
      idle_.notify_all();  // a parked drain_all re-arms its pop loop
      return;
    }
    if (!queue_.empty()) {
      // Budget full with queued work: the producer becomes a drainer
      // instead of parking.  This is what makes the queue deadlock-free
      // by construction — the blocked producer may be the only thread
      // that can reach a drain site (e.g. a plugin firing twice under
      // the server's pipeline mutex), so it frees the budget itself.
      // The stall is still real backpressure: the producer is doing disk
      // time instead of completing its iteration.
      Job head = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      lock.unlock();
      write_out(std::move(head));
      continue;
    }
    // Every pending byte is in flight on another drainer; those writes
    // finish without any help from us — park until one returns budget.
    while (!closed_ && pending_bytes_ + job.bytes() > budget_bytes_ &&
           pending_bytes_ != 0 && queue_.empty())
      space_.wait(lock);
    // Loop re-checks closed_ (fatal: enqueue-after-close) and re-evaluates
    // admission/drain with the lock held.
  }
}

bool WriteBehind::pop(Job* out) {
  MutexLock lock(mutex_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  return true;
}

void WriteBehind::write_out(Job job) {
  Stopwatch timer;
  double write_seconds = 0.0;
  // Transient (kIoError) failures are retried with bounded exponential
  // backoff: 1 ms doubling to a 50 ms cap, at most `retries_` total
  // attempts.  Anything else — bad path, stale handle — is deterministic
  // and fails immediately.  A job that exhausts the budget is poison:
  // dropped (callback still runs with the failure) so it can never wedge
  // drain_all, the idle hook, or shutdown.
  Status st;
  int attempts = 0;
  std::uint64_t retries_used = 0;
  for (;;) {
    ++attempts;
    if (faults_ != nullptr && faults_->should_fire("write_behind.write"))
      st = Status::io_error("write-behind '" + job.path + "': injected EIO");
    else if (job.perform)
      st = job.perform(&write_seconds);
    else
      st = write_image(backend_, job.path, job.image, job.stripe_count,
                       &write_seconds);
    if (st.is_ok() || st.code() != StatusCode::kIoError ||
        attempts >= retries_)
      break;
    ++retries_used;
    const std::int64_t backoff_ms =
        attempts >= 7 ? 50 : (std::int64_t{1} << (attempts - 1));
    DEDICORE_LOG(kWarn) << "write-behind: transient failure on '" << job.path
                        << "' (attempt " << attempts << "/" << retries_
                        << "): " << st.to_string() << "; retrying in "
                        << backoff_ms << "ms";
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  const bool quarantined = !st.is_ok() && st.code() == StatusCode::kIoError;
  const double drained_in = timer.elapsed_seconds();

  if (quarantined)
    DEDICORE_LOG(kError) << "write-behind: quarantining poison job '"
                         << job.path << "' after " << attempts
                         << " attempt(s): " << st.to_string();
  else if (!st.is_ok())
    DEDICORE_LOG(kError) << "write-behind: dropping '" << job.path
                         << "': " << st.to_string();
  if (job.on_complete) {
    // Outside mutex_ (the callback may take producer locks) but
    // serialized against other callbacks, so producers can account
    // without guarding against concurrent drainers themselves.
    MutexLock serialize(callback_mutex_);
    job.on_complete(st);
  }

  MutexLock lock(mutex_);
  // The job's budget share is released only now, after the backend call:
  // in-flight images still occupy memory, so they must still count
  // against the producers.
  DEDICORE_CHECK(pending_bytes_ >= job.bytes(),
                 "WriteBehind: pending-byte accounting underflow");
  pending_bytes_ -= job.bytes();
  --in_flight_;
  stats_.drain_seconds += drained_in;
  stats_.retries += retries_used;
  if (st.is_ok()) {
    ++stats_.jobs_written;
    stats_.bytes_written += job.bytes();
  } else {
    ++stats_.jobs_failed;
    if (quarantined) ++stats_.jobs_quarantined;
  }
  space_.notify_all();
  idle_.notify_all();
}

std::size_t WriteBehind::drain_some(std::size_t max_jobs) {
  std::size_t written = 0;
  Job job;
  while (written < max_jobs && pop(&job)) {
    write_out(std::move(job));
    ++written;
    job = Job{};
  }
  return written;
}

bool WriteBehind::try_drain_one() {
  Job job;
  if (!pop(&job)) return false;
  write_out(std::move(job));
  return true;
}

void WriteBehind::drain_all() {
  for (;;) {
    Job job;
    while (pop(&job)) {
      write_out(std::move(job));
      job = Job{};
    }
    // Jobs another drainer popped may still be mid-write: wait them out,
    // so a caller returning from drain_all knows every enqueued image has
    // been attempted and its completion callback has run — a server's
    // shutdown drain must not let a sibling's in-flight write outlive the
    // run.  A producer that slips a new job in meanwhile (another server
    // of the node still finishing) re-arms the pop loop instead of being
    // waited on forever.
    UniqueLock lock(mutex_);
    while (queue_.empty() && in_flight_ != 0) idle_.wait(lock);
    if (queue_.empty() && in_flight_ == 0) return;
  }
}

void WriteBehind::close() {
  {
    MutexLock lock(mutex_);
    if (closed_) {
      // Idempotent close still owes a final drain below (a racing enqueue
      // cannot exist: producers crash on enqueue-after-close).
    }
    closed_ = true;
    space_.notify_all();
  }
  drain_all();
}

std::uint64_t WriteBehind::pending_bytes() const {
  MutexLock lock(mutex_);
  return pending_bytes_;
}

std::size_t WriteBehind::pending_jobs() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

WriteBehindStats WriteBehind::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace dedicore::storage
