#include "storage/sharded_backend.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "storage/crc32c.hpp"

namespace dedicore::storage {

namespace {

std::string chunk_name(const std::string& path, std::size_t index) {
  return path + std::string(ShardedBackend::kChunkInfix) +
         std::to_string(index);
}

std::string manifest_name(const std::string& path) {
  return path + std::string(ShardedBackend::kManifestSuffix);
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

std::string serialize_manifest(const ChunkPlan& plan) {
  std::ostringstream out;
  out << "dedicore-sharded-manifest v2\n"
      << "generation " << plan.generation << "\n"
      << "size " << plan.total_bytes << "\n"
      << "chunk_size " << plan.chunk_size << "\n"
      << "replication " << plan.replication << "\n"
      << "chunks " << plan.chunk_count() << "\n";
  for (std::size_t i = 0; i < plan.chunk_count(); ++i) {
    out << "chunk " << i << " " << plan.sizes[i] << " "
        << crc_hex(plan.crcs[i]);
    for (std::size_t k = 0; k < plan.placements[i].roots.size(); ++k)
      out << (k == 0 ? " " : ",") << plan.placements[i].roots[k];
    out << "\n";
  }
  return out.str();
}

/// Strict parse; false on any malformation (the caller treats a malformed
/// manifest copy like a corrupt one and falls through to the next copy).
/// Every field the read path will later trust as an index or a length is
/// validated here against the invariants the writer maintains — a
/// parseable-but-inconsistent manifest (sizes that disagree with
/// chunk_size, an absurd chunk count) must be rejected, never allowed to
/// drive out-of-bounds copies or multi-GiB allocations downstream.
bool parse_manifest(const std::string& text, int root_count, ChunkPlan* out) {
  try {
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "dedicore-sharded-manifest v2")
      return false;
    auto read_kv = [&](const char* key, std::uint64_t* value) {
      if (!std::getline(in, line)) return false;
      std::istringstream ls(line);
      std::string k;
      return static_cast<bool>(ls >> k >> *value) && k == key;
    };
    std::uint64_t replication = 0, chunks = 0;
    if (!read_kv("generation", &out->generation)) return false;
    if (!read_kv("size", &out->total_bytes)) return false;
    if (!read_kv("chunk_size", &out->chunk_size)) return false;
    if (!read_kv("replication", &replication)) return false;
    if (!read_kv("chunks", &chunks)) return false;
    if (out->chunk_size == 0) return false;
    if (replication < 1 ||
        replication > static_cast<std::uint64_t>(root_count))
      return false;
    // The chunk count is fully determined by size/chunk_size; checking it
    // before the resizes bounds the allocations below.
    const std::uint64_t expected_chunks =
        out->total_bytes == 0
            ? 0
            : (out->total_bytes - 1) / out->chunk_size + 1;
    if (chunks != expected_chunks) return false;
    out->replication = static_cast<int>(replication);
    out->sizes.resize(chunks);
    out->crcs.resize(chunks);
    out->placements.resize(chunks);
    for (std::uint64_t i = 0; i < chunks; ++i) {
      if (!std::getline(in, line)) return false;
      std::istringstream ls(line);
      std::string tag, hex, roots;
      std::uint64_t index = 0;
      if (!(ls >> tag >> index >> out->sizes[i] >> hex >> roots)) return false;
      if (tag != "chunk" || index != i || hex.size() != 8) return false;
      // Every chunk is exactly chunk_size except the tail, which carries
      // the remainder: reads copy sizes[i] bytes at offset chunk_size*i,
      // so anything looser is an out-of-bounds write waiting to happen.
      const std::uint64_t expected_size =
          i + 1 < chunks
              ? out->chunk_size
              : out->total_bytes - out->chunk_size * (chunks - 1);
      if (out->sizes[i] != expected_size) return false;
      out->crcs[i] =
          static_cast<std::uint32_t>(std::strtoul(hex.c_str(), nullptr, 16));
      std::istringstream rs(roots);
      std::string item;
      while (std::getline(rs, item, ',')) {
        const int root = std::atoi(item.c_str());
        if (root < 0 || root >= root_count) return false;
        out->placements[i].roots.push_back(root);
      }
      if (out->placements[i].roots.empty()) return false;
    }
    return true;
  } catch (const std::exception&) {
    // bad_alloc / length_error from a hostile field: malformed, not fatal.
    return false;
  }
}

}  // namespace

struct ShardedBackend::OpenImage {
  std::string path;
  /// Serializes staging and the close-time drain.  Held across plan/
  /// write_chunk/publish in close(), so it sits ABOVE sharded.state,
  /// placement.state, and the posix.* locks in the hierarchy.
  Mutex io_mutex{"sharded.image"};
  /// Staged content; size == logical EOF.
  std::vector<std::byte> buffer DEDICORE_GUARDED_BY(io_mutex);
};

ShardedBackend::ShardedBackend(std::vector<std::filesystem::path> roots,
                               ShardedOptions options,
                               std::shared_ptr<fault::FaultInjector> faults)
    : options_(options) {
  if (roots.empty())
    throw ConfigError("ShardedBackend: at least one root is required");
  if (options_.chunk_size == 0)
    throw ConfigError("ShardedBackend: chunk_size must be > 0");
  if (options_.replication < 1 ||
      options_.replication > static_cast<int>(roots.size()))
    throw ConfigError("ShardedBackend: replication " +
                      std::to_string(options_.replication) +
                      " outside [1, " + std::to_string(roots.size()) +
                      " roots]");
  roots_.reserve(roots.size());
  std::set<std::filesystem::path> seen;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    // PosixBackend's ctor creates the directory (and runs its recovery
    // scan); canonicalize afterwards so "a" and "./a" are caught as the
    // same physical root — replicas on one disk would be silent data loss
    // waiting for that disk to die.
    roots_.push_back(std::make_unique<PosixBackend>(
        roots[i], faults, /*fault_target=*/static_cast<int>(i)));
    std::error_code ec;
    std::filesystem::path canon = std::filesystem::canonical(roots[i], ec);
    if (ec) canon = roots[i];
    if (!seen.insert(canon).second)
      throw ConfigError("ShardedBackend: root '" + roots[i].string() +
                        "' duplicates another root");
  }
  placement_ = std::make_unique<Placement>(
      options_.placement, static_cast<int>(roots_.size()),
      options_.replication, options_.placement_seed);
}

std::uint64_t ShardedBackend::next_generation(const std::string& path) {
  {
    // Fast path: this process already planned a generation for the path —
    // the cache is >= anything on disk (we only ever publish what we
    // planned), and it keeps queued-but-unpublished overwrites ordered.
    MutexLock lock(mutex_);
    auto it = generations_.find(path);
    if (it != generations_.end()) return ++it->second;
  }
  // First plan for this path: seed from whatever survives on disk, so an
  // overwrite after a restart still outranks the previous run's manifest.
  const std::string name = manifest_name(path);
  std::uint64_t on_disk = 0;
  for (const auto& root : roots_) {
    const auto text = root->read_file(name);
    if (!text.has_value()) continue;
    ChunkPlan existing;
    if (parse_manifest(
            std::string(reinterpret_cast<const char*>(text->data()),
                        text->size()),
            static_cast<int>(roots_.size()), &existing))
      on_disk = std::max(on_disk, existing.generation);
  }
  MutexLock lock(mutex_);
  auto [it, inserted] = generations_.emplace(path, on_disk + 1);
  if (!inserted) it->second = std::max(it->second, on_disk) + 1;
  return it->second;
}

std::shared_ptr<ChunkPlan> ShardedBackend::plan_image(
    const std::string& path, std::span<const std::byte> image) {
  auto plan = std::make_shared<ChunkPlan>();
  plan->path = path;
  plan->generation = next_generation(path);
  plan->total_bytes = image.size();
  plan->chunk_size = options_.chunk_size;
  plan->replication = options_.replication;
  for (std::uint64_t off = 0; off < image.size();
       off += options_.chunk_size) {
    const std::uint64_t n =
        std::min<std::uint64_t>(options_.chunk_size, image.size() - off);
    plan->sizes.push_back(n);
    plan->crcs.push_back(crc32c(image.subspan(off, n)));
  }
  plan->placements = placement_->place(path, plan->sizes);
  return plan;
}

Status ShardedBackend::write_chunk(const ChunkPlan& plan, std::size_t index,
                                   std::span<const std::byte> chunk,
                                   double* seconds) {
  DEDICORE_CHECK(index < plan.chunk_count(),
                 "ShardedBackend::write_chunk: chunk index out of range");
  DEDICORE_CHECK(chunk.size() == plan.sizes[index],
                 "ShardedBackend::write_chunk: slice does not match plan");
  const std::string name = chunk_name(plan.path, index);
  Status first_error;
  std::size_t landed = 0;
  double stall = 0.0;
  for (const int root : plan.placements[index].roots) {
    double sec = 0.0;
    Status st = write_image(*roots_[static_cast<std::size_t>(root)], name,
                            chunk, /*stripe_count=*/0, &sec);
    stall += sec;
    if (st.is_ok()) {
      ++landed;
    } else {
      if (first_error.is_ok()) first_error = std::move(st);
    }
  }
  if (seconds != nullptr) *seconds = stall;
  MutexLock lock(mutex_);
  counters_.chunks_written += landed;
  if (landed == 0) return first_error;  // all replicas failed: retryable
  if (landed < plan.placements[index].roots.size()) {
    // The chunk is durable but under-replicated — degraded, not failed:
    // the manifest still lists every planned root and reads skip the
    // missing copy.  Promoting this to a job failure would turn one bad
    // root into total write unavailability, the opposite of replication.
    ++counters_.degraded_chunk_writes;
    DEDICORE_LOG(kWarn) << "sharded: chunk '" << name << "' landed on "
                        << landed << "/" << plan.placements[index].roots.size()
                        << " roots: " << first_error.to_string();
  }
  return Status::ok();
}

std::vector<int> ShardedBackend::manifest_roots(const ChunkPlan& plan) const {
  if (!plan.placements.empty()) return plan.placements[0].roots;
  // Empty image: no chunk placement to follow; use the first
  // `replication` roots (deterministic, distinct).
  std::vector<int> out;
  for (int i = 0; i < options_.replication; ++i) out.push_back(i);
  return out;
}

Status ShardedBackend::publish_manifest(const ChunkPlan& plan) {
  const std::string text = serialize_manifest(plan);
  const auto bytes = std::as_bytes(std::span<const char>(text));
  const std::string name = manifest_name(plan.path);
  const std::vector<int> targets = manifest_roots(plan);
  Status first_error;
  std::size_t landed = 0;
  for (const int root : targets) {
    // Inner write_image goes through the PR 8 temp+fsync+rename path, so
    // each manifest copy appears atomically — the image is never visible
    // half-published.
    Status st =
        write_image(*roots_[static_cast<std::size_t>(root)], name, bytes);
    if (st.is_ok()) {
      ++landed;
    } else {
      if (first_error.is_ok()) first_error = std::move(st);
      DEDICORE_LOG(kWarn) << "sharded: manifest copy of '" << plan.path
                          << "' failed on root " << root << ": "
                          << st.to_string();
    }
  }
  if (landed == 0) return first_error;
  // An overwrite may have moved the manifest onto different roots
  // (balanced placement re-decides per generation): best-effort delete
  // the copies this generation does not occupy, so readers of a root
  // subset cannot resurrect the old image.  Roots this publish *failed*
  // on keep their old copy untouched — the generation scan in
  // load_manifest outranks it.
  for (std::size_t i = 0; i < roots_.size(); ++i)
    if (std::find(targets.begin(), targets.end(), static_cast<int>(i)) ==
        targets.end())
      roots_[i]->remove_file(name);
  MutexLock lock(mutex_);
  ++counters_.manifests_published;
  if (landed < targets.size()) {
    // Visible but under-replicated: surfaced like degraded_chunk_writes
    // so monitoring can see a manifest that lost copies.
    ++counters_.degraded_manifest_writes;
  }
  return Status::ok();
}

Status ShardedBackend::create(const std::string& path, FileHandle* out,
                              int stripe_count) {
  DEDICORE_CHECK(out != nullptr, "ShardedBackend::create: null out");
  (void)stripe_count;  // chunking is explicit here; the hint is for fsim
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  auto image = std::make_shared<OpenImage>();
  image->path = path;
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(image));
  ++stats_.files_created;
  *out = FileHandle{id};
  return Status::ok();
}

Status ShardedBackend::open(const std::string& path, FileHandle* out) {
  DEDICORE_CHECK(out != nullptr, "ShardedBackend::open: null out");
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  // Positional update: load the current (verified) content, mutate in
  // memory, republish at close.  Unlike PosixBackend's in-place fd this
  // rewrites every chunk, but it keeps the integrity invariant — a chunk
  // on disk is never half-new.
  auto image = std::make_shared<OpenImage>();
  image->path = path;
  if (Status st = read_image(path, &image->buffer); !st.is_ok()) return st;
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(image));
  *out = FileHandle{id};
  return Status::ok();
}

Status ShardedBackend::write(FileHandle file, std::span<const std::byte> bytes,
                             double* seconds) {
  // Append is its own entry point (offset resolved at EOF under the
  // handle's lock), not an in-band sentinel offset: every pwrite offset,
  // including UINT64_MAX, keeps its literal meaning.
  return stage(file, /*append=*/true, 0, bytes, seconds);
}

Status ShardedBackend::pwrite(FileHandle handle, std::uint64_t offset,
                              std::span<const std::byte> bytes,
                              double* seconds) {
  if (bytes.size() > UINT64_MAX - offset)
    return Status::invalid_argument(
        "sharded: pwrite at offset " + std::to_string(offset) + " of " +
        std::to_string(bytes.size()) + " bytes overflows the file range");
  return stage(handle, /*append=*/false, offset, bytes, seconds);
}

Status ShardedBackend::stage(FileHandle handle, bool append,
                             std::uint64_t offset,
                             std::span<const std::byte> bytes,
                             double* seconds) {
  std::shared_ptr<OpenImage> image;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(handle.id);
    if (it == open_.end())
      return Status::failed_precondition(
          "sharded: handle " + std::to_string(handle.id) +
          " is closed or invalid");
    image = it->second;
  }
  {
    MutexLock io(image->io_mutex);
    if (append) offset = image->buffer.size();
    if (offset + bytes.size() > image->buffer.size()) {
      try {
        image->buffer.resize(offset + bytes.size());  // zero-fills holes
      } catch (const std::exception&) {
        // A sparse write at an absurd offset is a caller error, not a
        // reason to terminate the process on bad_alloc.
        return Status::out_of_memory(
            "sharded: cannot stage " + std::to_string(bytes.size()) +
            " bytes at offset " + std::to_string(offset) + " of '" +
            image->path + "'");
      }
    }
    std::copy(bytes.begin(), bytes.end(),
              image->buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  // Staging is memory-speed; the disk stall happens at close/publication
  // (accounted in write_seconds there).
  if (seconds != nullptr) *seconds = 0.0;
  MutexLock lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  return Status::ok();
}

Status ShardedBackend::close(FileHandle handle) {
  std::shared_ptr<OpenImage> image;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(handle.id);
    // Same contract as the other backends: a double close is a broken
    // handle lifecycle, crash loudly.
    DEDICORE_CHECK(it != open_.end(),
                   "ShardedBackend: double close or stale file handle");
    image = it->second;
    open_.erase(it);
  }
  MutexLock io(image->io_mutex);
  Stopwatch timer;
  const auto plan = plan_image(image->path, image->buffer);
  Status result;
  for (std::size_t i = 0; result.is_ok() && i < plan->chunk_count(); ++i)
    result = write_chunk(
        *plan, i,
        std::span<const std::byte>(image->buffer)
            .subspan(plan->offset_of(i), plan->sizes[i]));
  if (result.is_ok()) result = publish_manifest(*plan);
  const double elapsed = timer.elapsed_seconds();
  MutexLock lock(mutex_);
  stats_.write_seconds += elapsed;
  return result;
}

Status ShardedBackend::load_manifest(const std::string& path,
                                     ChunkPlan* out) const {
  const std::string name = manifest_name(path);
  bool found_any = false, parsed_any = false;
  ChunkPlan best;
  // Scan EVERY root, not just until the first parseable copy: an
  // overwrite can leave a stale lower-generation manifest on a root the
  // new generation vacated (or failed to reach), and root-index order
  // would happily serve it.  The highest generation wins.
  for (const auto& root : roots_) {
    const auto text = root->read_file(name);
    if (!text.has_value()) continue;
    found_any = true;
    ChunkPlan plan;
    plan.path = path;
    if (parse_manifest(
            std::string(reinterpret_cast<const char*>(text->data()),
                        text->size()),
            static_cast<int>(roots_.size()), &plan)) {
      if (!parsed_any || plan.generation > best.generation)
        best = std::move(plan);
      parsed_any = true;
      continue;
    }
    // Malformed copy: treat like corruption and try the next root.
    MutexLock lock(mutex_);
    ++counters_.corrupt_chunks_detected;
  }
  if (parsed_any) {
    *out = std::move(best);
    return Status::ok();
  }
  if (found_any)
    return Status::data_loss("sharded: every manifest copy of '" + path +
                             "' is corrupt");
  return Status::not_found("sharded: no manifest for '" + path + "'");
}

Status ShardedBackend::read_image(const std::string& path,
                                  std::vector<std::byte>* out,
                                  bool* degraded) const {
  DEDICORE_CHECK(out != nullptr, "ShardedBackend::read_image: null out");
  if (degraded != nullptr) *degraded = false;
  ChunkPlan plan;
  if (Status st = load_manifest(path, &plan); !st.is_ok()) return st;
  out->assign(plan.total_bytes, std::byte{0});
  for (std::size_t i = 0; i < plan.chunk_count(); ++i) {
    const std::string name = chunk_name(path, i);
    bool recovered = false;
    std::size_t bad_copies = 0;
    for (const int root : plan.placements[i].roots) {
      const auto data = roots_[static_cast<std::size_t>(root)]->read_file(name);
      if (!data.has_value()) {
        // Missing copy (root lost, or a degraded write skipped it): not
        // corruption, but the read is degraded if a later replica serves.
        continue;
      }
      if (data->size() != plan.sizes[i] ||
          crc32c(*data) != plan.crcs[i]) {
        ++bad_copies;
        MutexLock lock(mutex_);
        ++counters_.corrupt_chunks_detected;
        continue;
      }
      std::copy(data->begin(), data->end(),
                out->begin() +
                    static_cast<std::ptrdiff_t>(plan.offset_of(i)));
      if (root != plan.placements[i].roots.front()) {
        // Served past a missing/corrupt primary copy.
        if (degraded != nullptr) *degraded = true;
        MutexLock lock(mutex_);
        ++counters_.degraded_reads;
      }
      recovered = true;
      break;
    }
    if (!recovered) {
      out->clear();
      return Status::data_loss(
          "sharded: chunk " + std::to_string(i) + " of '" + path +
          "' is unrecoverable (" + std::to_string(bad_copies) + " of " +
          std::to_string(plan.placements[i].roots.size()) +
          " copies corrupt, rest missing)");
    }
  }
  return Status::ok();
}

bool ShardedBackend::exists(const std::string& path) const {
  const std::string name = manifest_name(path);
  for (const auto& root : roots_)
    if (root->exists(name)) return true;
  return false;
}

std::optional<std::vector<std::byte>> ShardedBackend::read_file(
    const std::string& path) const {
  std::vector<std::byte> out;
  if (!read_image(path, &out).is_ok()) return std::nullopt;
  return out;
}

std::uint64_t ShardedBackend::file_size(const std::string& path) const {
  ChunkPlan plan;
  if (!load_manifest(path, &plan).is_ok()) return 0;
  return plan.total_bytes;
}

std::vector<std::string> ShardedBackend::list_files() const {
  // The manifest set IS the namespace: chunk files are internal layout.
  std::set<std::string> names;
  for (const auto& root : roots_) {
    for (const std::string& file : root->list_files()) {
      if (file.size() <= kManifestSuffix.size() ||
          file.compare(file.size() - kManifestSuffix.size(),
                       kManifestSuffix.size(), kManifestSuffix) != 0)
        continue;
      names.insert(file.substr(0, file.size() - kManifestSuffix.size()));
    }
  }
  return {names.begin(), names.end()};
}

std::size_t ShardedBackend::file_count() const { return list_files().size(); }

StorageStats ShardedBackend::stats() const {
  MutexLock lock(mutex_);
  StorageStats out = stats_;
  // Physical-root recovery/reclaim events surface in the logical view too
  // — they are the numbers fault-tolerance tests assert on.
  for (const auto& root : roots_) {
    const StorageStats rs = root->stats();
    out.files_quarantined += rs.files_quarantined;
    out.handles_reclaimed += rs.handles_reclaimed;
  }
  return out;
}

std::vector<StorageStats> ShardedBackend::root_stats() const {
  std::vector<StorageStats> out;
  out.reserve(roots_.size());
  for (const auto& root : roots_) out.push_back(root->stats());
  return out;
}

ShardedCounters ShardedBackend::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

std::size_t ShardedBackend::open_handles() const {
  MutexLock lock(mutex_);
  return open_.size();
}

std::string ShardedBackend::stats_json() const {
  StorageStats logical;
  ShardedCounters c;
  {
    MutexLock lock(mutex_);
    logical = stats_;
    c = counters_;
  }
  std::ostringstream out;
  auto stats_obj = [&](const StorageStats& s) {
    out << "{\"files_created\":" << s.files_created << ",\"writes\":"
        << s.writes << ",\"bytes_written\":" << s.bytes_written
        << ",\"write_seconds\":" << s.write_seconds
        << ",\"files_quarantined\":" << s.files_quarantined
        << ",\"handles_reclaimed\":" << s.handles_reclaimed << "}";
  };
  out << "{\"backend\":\"sharded\",\"roots\":" << roots_.size()
      << ",\"chunk_size\":" << options_.chunk_size << ",\"placement\":\""
      << placement_policy_name(options_.placement)
      << "\",\"placement_seed\":" << options_.placement_seed
      << ",\"replication\":" << options_.replication << ",\"logical\":";
  stats_obj(logical);
  out << ",\"sharded\":{\"chunks_written\":" << c.chunks_written
      << ",\"degraded_chunk_writes\":" << c.degraded_chunk_writes
      << ",\"manifests_published\":" << c.manifests_published
      << ",\"degraded_manifest_writes\":" << c.degraded_manifest_writes
      << ",\"corrupt_chunks_detected\":" << c.corrupt_chunks_detected
      << ",\"degraded_reads\":" << c.degraded_reads << "},\"per_root\":[";
  const auto assigned = placement_->assigned_bytes();
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"root\":\"" << roots_[i]->root().string()
        << "\",\"assigned_bytes\":" << assigned[i] << ",\"stats\":";
    stats_obj(roots_[i]->stats());
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace dedicore::storage
