// Pluggable persistence layer behind every h5lite emit path.
//
// The paper's claim is that dedicated cores/nodes absorb I/O so the
// simulation never stalls.  Historically every "persisted" byte landed in
// fsim's in-memory store — overlap without a disk.  StorageBackend
// extracts the write contract so the same writers (core::StorePlugin,
// core/baseline_io, examples) can target either
//
//   * storage::SimBackend   — the filesystem simulator, unchanged
//     semantics: modelled durations, striping, MDS contention, in-memory
//     content retention; or
//   * storage::PosixBackend — real files through create/pwrite/fsync/
//     close, file-per-process and per-node aggregated layouts, the way
//     Damaris's default storage plugin emits per-node aggregated HDF5.
//
// Contract highlights (enforced by tests/storage_test.cpp on both
// backends):
//   * create() truncates an existing file and counts one create;
//   * write() appends, pwrite() is positional and zero-fills holes;
//   * write/pwrite after close return a Status error (kFailedPrecondition)
//     — never UB;
//   * closing a handle twice is a fatal invariant violation (crash), like
//     fsim's stale-handle check;
//   * read_file/list_files/file_size observe exactly the bytes written;
//   * PosixBackend publishes created files crash-consistently: bytes land
//     in a hidden temp, close() fsyncs and atomically renames it into
//     place, and a startup recovery scan quarantines torn temps — readers
//     never observe a partially written image.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dedicore::storage {

/// Opaque per-backend file handle.  Ids are never reused within a backend
/// instance, so a closed handle stays invalid forever.
struct FileHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

/// FileSystemStats-equivalent counters every backend maintains.  The
/// conformance suite requires the countable fields (files_created, writes,
/// bytes_written) to be identical across backends for the same workload;
/// write_seconds is modelled time for SimBackend and wall time for
/// PosixBackend.
struct StorageStats {
  std::uint64_t files_created = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  double write_seconds = 0.0;
  /// Torn in-progress files found by PosixBackend's startup recovery scan
  /// and moved aside to `.quarantine/` (always 0 on SimBackend: simulated
  /// state does not survive a process, so there is nothing to recover).
  std::uint64_t files_quarantined = 0;
  /// Handles still open when the backend reclaimed them (destructor or an
  /// explicit reclaim_leaked_handles()).  A nonzero value is a caller bug
  /// — but the fds are closed, not leaked.
  std::uint64_t handles_reclaimed = 0;
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// "sim" or "posix".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Creates (or truncates) `path`, opening it for writing.  Parent
  /// "directories" are implied by the path ('/'-separated on both
  /// backends).  `stripe_count` is a placement hint: the simulator models
  /// it, POSIX ignores it.  kInvalidArgument for unusable paths (empty,
  /// absolute, or escaping the backend root), kIoError on syscall failure.
  virtual Status create(const std::string& path, FileHandle* out,
                        int stripe_count = 0) = 0;

  /// Opens an existing file for positional writes (collective I/O, shared
  /// headers).  kNotFound when absent.
  virtual Status open(const std::string& path, FileHandle* out) = 0;

  /// Appends `bytes` at the current end of file.  On success `*seconds`
  /// (when non-null) receives the time the caller stalled: modelled
  /// seconds on the simulator, wall seconds on POSIX.
  virtual Status write(FileHandle file, std::span<const std::byte> bytes,
                       double* seconds = nullptr) = 0;

  /// Positional write; regions past EOF are zero-filled (sparse).
  virtual Status pwrite(FileHandle file, std::uint64_t offset,
                        std::span<const std::byte> bytes,
                        double* seconds = nullptr) = 0;

  /// Flushes (PosixBackend: fsync) and invalidates the handle.  Closing a
  /// handle that was never issued or was already closed is a fatal error.
  virtual Status close(FileHandle file) = 0;

  // -- content inspection (test/analysis use; no modelled cost) -----------
  [[nodiscard]] virtual bool exists(const std::string& path) const = 0;
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> read_file(
      const std::string& path) const = 0;
  [[nodiscard]] virtual std::uint64_t file_size(const std::string& path) const = 0;
  /// All file paths, '/'-separated and sorted.
  [[nodiscard]] virtual std::vector<std::string> list_files() const = 0;
  [[nodiscard]] virtual std::size_t file_count() const = 0;

  [[nodiscard]] virtual StorageStats stats() const = 0;
};

/// The h5lite builder's emit path: create + append + close in one step —
/// how StorePlugin and FilePerProcessWriter persist a finalized image.
/// Returns the first failing Status; `*seconds` (when non-null) receives
/// the stall of the write call on success.
Status write_image(StorageBackend& backend, const std::string& path,
                   std::span<const std::byte> image, int stripe_count = 0,
                   double* seconds = nullptr);

/// The path rule every backend enforces identically (so a configuration
/// that runs green on the simulator cannot start failing when switched to
/// posix): non-empty, relative, and no '..' component.  kInvalidArgument
/// otherwise.
Status validate_backend_path(const std::string& path);

}  // namespace dedicore::storage
