#include "storage/posix_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace dedicore::storage {

namespace {

/// Temps are "<final>.part-<id>"; anything carrying the marker is an
/// unpublished (possibly torn) image, invisible to readers.
bool is_temp_name(const std::string& filename) {
  return filename.find(".part-") != std::string::npos;
}

}  // namespace

std::string PosixBackend::err_prefix(const char* op,
                                     const std::string& path) const {
  return "posix " + std::string(op) + " [root " + root_.string() + "] '" +
         path + "'";
}

std::string PosixBackend::errno_text(const char* op,
                                     const std::string& path) const {
  return err_prefix(op, path) + ": " + std::strerror(errno);
}

/// Durability of a rename is a property of the *directory*, not the file:
/// without this fsync a crash can roll the directory entry back to the
/// pre-rename state even though the inode was synced.
Status PosixBackend::fsync_parent_dir(const std::filesystem::path& final_full,
                                      const std::string& path) const {
  const int dirfd = ::open(final_full.parent_path().c_str(),
                           O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) return Status::io_error(errno_text("opendir", path));
  const int rc = ::fsync(dirfd);
  ::close(dirfd);
  if (rc != 0) return Status::io_error(errno_text("fsync dir", path));
  return Status::ok();
}

struct PosixBackend::OpenFile {
  std::string path;   ///< backend-relative, for diagnostics
  std::filesystem::path write_full;  ///< where the fd points (temp for create)
  std::filesystem::path final_full;  ///< the published name
  bool pending_rename = false;       ///< close() must rename write -> final
  /// Serializes the fd's I/O and the append cursor.  Taken only after the
  /// backend's handle lock ("posix.handles") has been released — the two
  /// never nest.
  Mutex io_mutex{"posix.file"};
  int fd DEDICORE_GUARDED_BY(io_mutex) = -1;
  std::uint64_t append_at DEDICORE_GUARDED_BY(io_mutex) = 0;  ///< EOF cursor
};

PosixBackend::PosixBackend(std::filesystem::path root,
                           std::shared_ptr<fault::FaultInjector> faults,
                           int fault_target)
    : root_(std::move(root)),
      faults_(std::move(faults)),
      fault_target_(fault_target) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec)
    throw ConfigError("PosixBackend: cannot create root '" + root_.string() +
                      "': " + ec.message());
  if (::access(root_.c_str(), W_OK) != 0)
    throw ConfigError("PosixBackend: root '" + root_.string() +
                      "' is not writable: " + std::strerror(errno));
  recover_torn_files();
}

PosixBackend::~PosixBackend() {
  // Leaked handles are a caller bug but must not leak fds; warn so a test
  // that forgot to close shows up in the log instead of in lsof.
  const std::size_t leaked = reclaim_leaked_handles();
  if (leaked > 0)
    DEDICORE_LOG(kWarn) << "PosixBackend: reclaimed " << leaked
                        << " leaked handle(s) at destruction";
}

std::size_t PosixBackend::reclaim_leaked_handles() {
  std::unordered_map<std::uint64_t, std::shared_ptr<OpenFile>> leaked;
  {
    MutexLock lock(mutex_);
    leaked.swap(open_);
    stats_.handles_reclaimed += leaked.size();
  }
  for (auto& [id, file] : leaked) {
    DEDICORE_LOG(kWarn) << "PosixBackend: handle " << id << " ('" << file->path
                        << "') was never closed; reclaiming fd without "
                           "publishing";
    MutexLock io(file->io_mutex);
    // No fsync, no rename: a leaked create's temp stays torn on disk and
    // the next startup's recovery scan quarantines it — exactly the state
    // a crashed process would have left.
    if (file->fd >= 0) ::close(file->fd);
    file->fd = -1;
  }
  return leaked.size();
}

void PosixBackend::recover_torn_files() {
  std::error_code ec;
  std::vector<std::filesystem::path> torn;
  std::filesystem::recursive_directory_iterator it(root_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().filename() == kQuarantineDirName) {
      // Already-quarantined files keep their temp names; don't re-move.
      std::error_code dec;
      if (it->is_directory(dec) && !dec) it.disable_recursion_pending();
      continue;
    }
    std::error_code fec;
    if (!it->is_regular_file(fec) || fec) continue;
    if (is_temp_name(it->path().filename().string())) torn.push_back(it->path());
  }
  if (torn.empty()) return;

  const std::filesystem::path qdir = quarantine_dir();
  std::filesystem::create_directories(qdir, ec);
  for (const auto& path : torn) {
    // Flatten the relative path into the quarantine name so nested torn
    // temps cannot collide and the origin stays readable in the name.
    std::string qname =
        std::filesystem::relative(path, root_, ec).generic_string();
    std::replace(qname.begin(), qname.end(), '/', '_');
    std::filesystem::rename(path, qdir / qname, ec);
    if (ec) {
      // Same filesystem, so a failing rename is exotic; removal still
      // upholds the contract that no torn image is visible.
      std::filesystem::remove(path, ec);
    }
    DEDICORE_LOG(kWarn) << "PosixBackend: quarantined torn temp '"
                        << path.string() << "' from a previous crashed run";
    // Ctor-time, so uncontended — but the counter is guarded, and the
    // analysis rightly has no notion of "no concurrent readers yet".
    MutexLock lock(mutex_);
    ++stats_.files_quarantined;
  }
}

Status PosixBackend::materialize(const std::string& path,
                                 std::filesystem::path* out) const {
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  *out = root_ / std::filesystem::path(path);
  return Status::ok();
}

Status PosixBackend::create(const std::string& path, FileHandle* out,
                            int stripe_count) {
  DEDICORE_CHECK(out != nullptr, "PosixBackend::create: null out");
  (void)stripe_count;  // placement hint: meaningful to the simulator only
  std::filesystem::path full;
  if (Status st = materialize(path, &full); !st.is_ok()) return st;

  std::error_code ec;
  std::filesystem::create_directories(full.parent_path(), ec);
  if (ec)
    return Status::io_error(err_prefix("create: mkdir", path) + ": " +
                            ec.message());

  // Write into a same-directory temp; the final name appears only at
  // close(), after the bytes are durable (fsync + rename + dir fsync).
  // The handle id makes the temp unique, so concurrent creates of the
  // same path race only on the final rename (last one wins, atomically).
  std::uint64_t id = 0;
  {
    MutexLock lock(mutex_);
    id = next_id_++;
  }
  const std::filesystem::path temp(full.string() + ".part-" +
                                   std::to_string(id));
  const int fd = ::open(temp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::io_error(errno_text("create", path));

  auto file = std::make_shared<OpenFile>();
  file->path = path;
  file->write_full = temp;
  file->final_full = full;
  file->pending_rename = true;
  {
    // Not yet published to the handle table, but the guarded fd write
    // needs the per-file lock for the analysis (uncontended by definition).
    MutexLock io(file->io_mutex);
    file->fd = fd;
  }
  MutexLock lock(mutex_);
  open_.emplace(id, std::move(file));
  ++stats_.files_created;
  *out = FileHandle{id};
  return Status::ok();
}

Status PosixBackend::open(const std::string& path, FileHandle* out) {
  DEDICORE_CHECK(out != nullptr, "PosixBackend::open: null out");
  std::filesystem::path full;
  if (Status st = materialize(path, &full); !st.is_ok()) return st;

  // Positional update of an already-published file (collective shared
  // headers): in-place, no rename on close — republishing would race the
  // other writers of the same file.
  const int fd = ::open(full.c_str(), O_WRONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      return Status::not_found(err_prefix("open", path) + ": no such file");
    return Status::io_error(errno_text("open", path));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::io_error(errno_text("open: lseek", path));
  }

  auto file = std::make_shared<OpenFile>();
  file->path = path;
  file->write_full = full;
  file->final_full = full;
  file->pending_rename = false;
  {
    MutexLock io(file->io_mutex);  // pre-publication; see create()
    file->fd = fd;
    file->append_at = static_cast<std::uint64_t>(end);
  }
  MutexLock lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(file));
  *out = FileHandle{id};
  return Status::ok();
}

Status PosixBackend::do_pwrite(FileHandle handle, std::uint64_t offset,
                               std::span<const std::byte> bytes,
                               double* seconds, bool append) {
  std::shared_ptr<OpenFile> file;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(handle.id);
    if (it == open_.end())
      return Status::failed_precondition(
          "posix: handle " + std::to_string(handle.id) +
          " is closed or invalid");
    file = it->second;
  }
  if (faults_ != nullptr && faults_->should_fire("posix.pwrite", fault_target_))
    return Status::io_error(err_prefix("pwrite", file->path) +
                            ": injected EIO");

  Stopwatch timer;
  {
    MutexLock io(file->io_mutex);
    if (append) offset = file->append_at;
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::pwrite(
          file->fd, reinterpret_cast<const char*>(bytes.data()) + done,
          bytes.size() - done, static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::io_error(errno_text("pwrite", file->path));
      }
      done += static_cast<std::size_t>(n);
    }
    file->append_at = std::max<std::uint64_t>(file->append_at,
                                              offset + bytes.size());
  }
  const double duration = timer.elapsed_seconds();
  if (seconds != nullptr) *seconds = duration;

  MutexLock lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  stats_.write_seconds += duration;
  return Status::ok();
}

Status PosixBackend::write(FileHandle file, std::span<const std::byte> bytes,
                           double* seconds) {
  return do_pwrite(file, 0, bytes, seconds, /*append=*/true);
}

Status PosixBackend::pwrite(FileHandle file, std::uint64_t offset,
                            std::span<const std::byte> bytes, double* seconds) {
  return do_pwrite(file, offset, bytes, seconds, /*append=*/false);
}

Status PosixBackend::close(FileHandle handle) {
  std::shared_ptr<OpenFile> file;
  {
    MutexLock lock(mutex_);
    auto it = open_.find(handle.id);
    // Mirror fsim's stale-handle crash: a double close means the caller's
    // handle lifecycle is broken, and silently ignoring it would let a
    // use-after-close of a *recycled* descriptor go unnoticed.
    DEDICORE_CHECK(it != open_.end(),
                   "PosixBackend: double close or stale file handle");
    file = it->second;
    open_.erase(it);
  }
  MutexLock io(file->io_mutex);

  // SIGKILL-equivalent crash mid-close: the fd vanishes with the process —
  // no fsync, no rename.  The torn temp stays on disk for the next
  // startup's recovery scan; the final name was never touched.  Returns ok
  // because a real crash never returns at all: the interesting observer is
  // the next incarnation of the backend, not this caller.
  if (faults_ != nullptr &&
      faults_->should_fire("posix.crash_on_close", fault_target_)) {
    ::close(file->fd);
    file->fd = -1;
    return Status::ok();
  }

  Status result = Status::ok();
  if (faults_ != nullptr && faults_->should_fire("posix.fsync", fault_target_))
    result = Status::io_error(err_prefix("fsync", file->path) +
                              ": injected EIO");
  else if (::fsync(file->fd) != 0)
    result = Status::io_error(errno_text("fsync", file->path));
  if (::close(file->fd) != 0 && result.is_ok())
    result = Status::io_error(errno_text("close", file->path));
  file->fd = -1;

  // Publication happens only after a clean fsync: a failed close leaves
  // the (possibly torn) temp unpublished — the previously published final,
  // if any, is untouched, and a later retry recreates a fresh temp.  The
  // dead temp is invisible to readers and swept by the next recovery scan.
  if (!result.is_ok() || !file->pending_rename) return result;

  if (faults_ != nullptr && faults_->should_fire("posix.rename", fault_target_))
    return Status::io_error(err_prefix("rename", file->path) +
                            ": injected EIO");
  if (::rename(file->write_full.c_str(), file->final_full.c_str()) != 0)
    return Status::io_error(errno_text("rename", file->path));
  return fsync_parent_dir(file->final_full, file->path);
}

bool PosixBackend::remove_file(const std::string& path) {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return false;
  std::error_code ec;
  return std::filesystem::remove(full, ec) && !ec;
}

bool PosixBackend::exists(const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return false;
  std::error_code ec;
  return std::filesystem::is_regular_file(full, ec);
}

std::optional<std::vector<std::byte>> PosixBackend::read_file(
    const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return std::nullopt;
  std::ifstream in(full, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::byte> out;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return std::nullopt;
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  if (!in && size > 0) return std::nullopt;
  return out;
}

std::uint64_t PosixBackend::file_size(const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return 0;
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(full, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::vector<std::string> PosixBackend::list_files() const {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(root_, ec), end;
  if (ec) return out;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->path().filename() == kQuarantineDirName) {
      // Quarantined torn images are evidence, not output.
      std::error_code dec;
      if (it->is_directory(dec) && !dec) it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec) || ec) continue;
    // Unpublished temps are in-flight state, not files: a reader listing
    // the root mid-write must see only complete images.
    if (is_temp_name(it->path().filename().string())) continue;
    out.push_back(
        std::filesystem::relative(it->path(), root_, ec).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PosixBackend::file_count() const { return list_files().size(); }

StorageStats PosixBackend::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t PosixBackend::open_handles() const {
  MutexLock lock(mutex_);
  return open_.size();
}

}  // namespace dedicore::storage
