#include "storage/posix_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <system_error>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace dedicore::storage {

namespace {

std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

struct PosixBackend::OpenFile {
  std::string path;   ///< backend-relative, for diagnostics
  int fd = -1;
  std::mutex io_mutex;          ///< serializes append-cursor updates
  std::uint64_t append_at = 0;  ///< end-of-file cursor for write()
};

PosixBackend::PosixBackend(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec)
    throw ConfigError("PosixBackend: cannot create root '" + root_.string() +
                      "': " + ec.message());
  if (::access(root_.c_str(), W_OK) != 0)
    throw ConfigError("PosixBackend: root '" + root_.string() +
                      "' is not writable: " + std::strerror(errno));
}

PosixBackend::~PosixBackend() {
  // Leaked handles are a caller bug but must not leak fds; warn so a test
  // that forgot to close shows up in the log instead of in lsof.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, file] : open_) {
    DEDICORE_LOG(kWarn) << "PosixBackend: handle " << id << " ('" << file->path
                        << "') still open at backend destruction; closing";
    ::close(file->fd);
  }
  open_.clear();
}

Status PosixBackend::materialize(const std::string& path,
                                 std::filesystem::path* out) const {
  if (Status st = validate_backend_path(path); !st.is_ok()) return st;
  *out = root_ / std::filesystem::path(path);
  return Status::ok();
}

Status PosixBackend::create(const std::string& path, FileHandle* out,
                            int stripe_count) {
  DEDICORE_CHECK(out != nullptr, "PosixBackend::create: null out");
  (void)stripe_count;  // placement hint: meaningful to the simulator only
  std::filesystem::path full;
  if (Status st = materialize(path, &full); !st.is_ok()) return st;

  std::error_code ec;
  std::filesystem::create_directories(full.parent_path(), ec);
  if (ec)
    return Status::io_error("posix create: mkdir for '" + path +
                            "': " + ec.message());
  const int fd = ::open(full.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::io_error(errno_text("posix create", path));

  auto file = std::make_shared<OpenFile>();
  file->path = path;
  file->fd = fd;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(file));
  ++stats_.files_created;
  *out = FileHandle{id};
  return Status::ok();
}

Status PosixBackend::open(const std::string& path, FileHandle* out) {
  DEDICORE_CHECK(out != nullptr, "PosixBackend::open: null out");
  std::filesystem::path full;
  if (Status st = materialize(path, &full); !st.is_ok()) return st;

  const int fd = ::open(full.c_str(), O_WRONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      return Status::not_found("posix open: no such file '" + path + "'");
    return Status::io_error(errno_text("posix open", path));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::io_error(errno_text("posix open: lseek", path));
  }

  auto file = std::make_shared<OpenFile>();
  file->path = path;
  file->fd = fd;
  file->append_at = static_cast<std::uint64_t>(end);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  open_.emplace(id, std::move(file));
  *out = FileHandle{id};
  return Status::ok();
}

Status PosixBackend::do_pwrite(FileHandle handle, std::uint64_t offset,
                               std::span<const std::byte> bytes,
                               double* seconds, bool append) {
  std::shared_ptr<OpenFile> file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_.find(handle.id);
    if (it == open_.end())
      return Status::failed_precondition(
          "posix: handle " + std::to_string(handle.id) +
          " is closed or invalid");
    file = it->second;
  }

  Stopwatch timer;
  {
    std::lock_guard<std::mutex> io(file->io_mutex);
    if (append) offset = file->append_at;
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::pwrite(
          file->fd, reinterpret_cast<const char*>(bytes.data()) + done,
          bytes.size() - done, static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::io_error(errno_text("posix pwrite", file->path));
      }
      done += static_cast<std::size_t>(n);
    }
    file->append_at = std::max<std::uint64_t>(file->append_at,
                                              offset + bytes.size());
  }
  const double duration = timer.elapsed_seconds();
  if (seconds != nullptr) *seconds = duration;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  stats_.write_seconds += duration;
  return Status::ok();
}

Status PosixBackend::write(FileHandle file, std::span<const std::byte> bytes,
                           double* seconds) {
  return do_pwrite(file, 0, bytes, seconds, /*append=*/true);
}

Status PosixBackend::pwrite(FileHandle file, std::uint64_t offset,
                            std::span<const std::byte> bytes, double* seconds) {
  return do_pwrite(file, offset, bytes, seconds, /*append=*/false);
}

Status PosixBackend::close(FileHandle handle) {
  std::shared_ptr<OpenFile> file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_.find(handle.id);
    // Mirror fsim's stale-handle crash: a double close means the caller's
    // handle lifecycle is broken, and silently ignoring it would let a
    // use-after-close of a *recycled* descriptor go unnoticed.
    DEDICORE_CHECK(it != open_.end(),
                   "PosixBackend: double close or stale file handle");
    file = it->second;
    open_.erase(it);
  }
  std::lock_guard<std::mutex> io(file->io_mutex);
  Status result = Status::ok();
  if (::fsync(file->fd) != 0)
    result = Status::io_error(errno_text("posix fsync", file->path));
  if (::close(file->fd) != 0 && result.is_ok())
    result = Status::io_error(errno_text("posix close", file->path));
  file->fd = -1;
  return result;
}

bool PosixBackend::exists(const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return false;
  std::error_code ec;
  return std::filesystem::is_regular_file(full, ec);
}

std::optional<std::vector<std::byte>> PosixBackend::read_file(
    const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return std::nullopt;
  std::ifstream in(full, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::byte> out;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return std::nullopt;
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  if (!in && size > 0) return std::nullopt;
  return out;
}

std::uint64_t PosixBackend::file_size(const std::string& path) const {
  std::filesystem::path full;
  if (!materialize(path, &full).is_ok()) return 0;
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(full, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::vector<std::string> PosixBackend::list_files() const {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(root_, ec), end;
  if (ec) return out;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    out.push_back(
        std::filesystem::relative(it->path(), root_, ec).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PosixBackend::file_count() const { return list_files().size(); }

StorageStats PosixBackend::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PosixBackend::open_handles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

}  // namespace dedicore::storage
